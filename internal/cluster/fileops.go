package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/lockmgr"
	"repro/internal/shadow"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Request/response payloads for the file operations.  Data-carrying
// payloads implement simnet.Sizer so the cost model charges realistic
// wire bytes.

type createReq struct{ Path string }

type openReq struct{ Path string }
type openResp struct {
	FileID string
	Size   int64
}

type closeReq struct {
	FileID string
	PID    int
	Txn    string
}

type syncReq struct {
	FileID string
	PID    int
	Txn    string
}

type statReq struct{ FileID string }
type statResp struct {
	Size          int64
	CommittedSize int64
}

type readReq struct {
	FileID string
	Off    int64
	Len    int
	PID    int
	Txn    string
}

func (r readReq) WireSize() int { return 48 }

type readResp struct{ Data []byte }

func (r readResp) WireSize() int { return 32 + len(r.Data) }

type writeReq struct {
	FileID string
	Off    int64
	Data   []byte
	PID    int
	Txn    string
}

func (r writeReq) WireSize() int { return 48 + len(r.Data) }

type writeResp struct{ N int }

type lockReq struct {
	FileID string
	PID    int
	Txn    string
	Mode   lockmgr.Mode
	Off    int64
	Len    int64
	AtEOF  bool
	NonTxn bool
	Wait   bool
}

type lockResp struct {
	Off int64
	Len int64
	// Lease grant piggybacked on the reply (DESIGN.md section 13):
	// LeaseMode != ModeNone means the storage site installed a lease over
	// [LeaseOff, LeaseOff+LeaseLen) — the whole file when LeaseWhole —
	// which the requester may cache for Config.LeaseTTL.
	LeaseMode  lockmgr.Mode
	LeaseOff   int64
	LeaseLen   int64
	LeaseWhole bool
}

type unlockReq struct {
	FileID string
	PID    int
	Txn    string
	Off    int64
	Len    int64
}

type unlockResp struct{ Retained bool }

type listReq struct{ Volume string }
type listResp struct{ Names []string }

type removeReq struct{ Path string }

// wrap adapts a request-only handler to the simnet.Handler signature.
func (s *Site) wrap(fn func(req any) (any, error)) func(simnet.SiteID, any) (any, error) {
	return func(from simnet.SiteID, req any) (any, error) { return fn(req) }
}

// registerFileHandlers installs the storage-site side of the file
// operations.
func (s *Site) registerFileHandlers() {
	s.ep.Handle("create", s.wrap(func(req any) (any, error) { return nil, s.handleCreate(req.(createReq)) }))
	s.ep.Handle("open", s.wrap(func(req any) (any, error) { return s.handleOpen(req.(openReq)) }))
	s.ep.Handle("close", s.wrap(func(req any) (any, error) { return nil, s.handleClose(req.(closeReq)) }))
	s.ep.Handle("sync", s.wrap(func(req any) (any, error) { return nil, s.handleSync(req.(syncReq)) }))
	s.ep.Handle("stat", s.wrap(func(req any) (any, error) { return s.handleStat(req.(statReq)) }))
	// read, write and lock keep the sender's identity: the lease
	// protocol needs to know which site is asking (a site's own leases
	// never block it, and leases are only granted to remote requesters).
	s.ep.Handle("read", func(from simnet.SiteID, req any) (any, error) { return s.handleRead(from, req.(readReq)) })
	s.ep.Handle("write", func(from simnet.SiteID, req any) (any, error) { return s.handleWrite(from, req.(writeReq)) })
	s.ep.Handle("lock", func(from simnet.SiteID, req any) (any, error) { return s.handleLock(from, req.(lockReq)) })
	s.ep.Handle("leaseRevoke", s.wrap(func(req any) (any, error) {
		s.leaseCacheDrop(req.(leaseRevokeReq).FileID)
		return nil, nil
	}))
	s.ep.Handle("unlock", s.wrap(func(req any) (any, error) { return s.handleUnlock(req.(unlockReq)) }))
	s.ep.Handle("list", s.wrap(func(req any) (any, error) { return s.handleList(req.(listReq)) }))
	s.ep.Handle("remove", s.wrap(func(req any) (any, error) { return nil, s.handleRemove(req.(removeReq)) }))
}

// ---- storage-site handlers ----

func (s *Site) handleCreate(req createReq) error {
	volName, name, err := splitPath(req.Path)
	if err != nil {
		return err
	}
	vs, err := s.volByName(volName)
	if err != nil {
		return err
	}
	_, err = vs.dirCreate(name)
	return err
}

func (s *Site) volByName(name string) (*volState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs, ok := s.vols[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q not stored at %v", ErrNoSuchVolume, name, s.id)
	}
	return vs, nil
}

// handleOpen resolves the name (the expensive name-mapping the paper
// separates from locking, section 3.2), brings the inode into memory, and
// returns the file's identity.
func (s *Site) handleOpen(req openReq) (openResp, error) {
	if err := s.movingGuard(req.Path); err != nil {
		return openResp{}, err
	}
	volName, name, err := splitPath(req.Path)
	if err != nil {
		return openResp{}, err
	}
	vs, err := s.volByName(volName)
	if err != nil {
		return openResp{}, err
	}
	ino, err := vs.dirLookup(name)
	if err != nil {
		return openResp{}, err
	}
	fileID := req.Path
	s.mu.Lock()
	defer s.mu.Unlock()
	of, ok := s.open[fileID]
	if !ok {
		file, err := shadow.Open(vs.vol, ino)
		if err != nil {
			return openResp{}, err
		}
		file.CleanCacheForDiff = s.cl.cfg.DiffFromBufferPool
		of = &openFile{
			id:   fileID,
			vs:   vs,
			file: file,
		}
		// The size function reads through the entry, not the file, so a
		// recovery-time refresh of of.file keeps append locks correct.
		of.locks = s.locks.File(fileID, func() int64 { return of.file.Size() })
		s.open[fileID] = of
	}
	of.refs++
	return openResp{FileID: fileID, Size: of.file.Size()}, nil
}

// handleClose drops one reference.  For a non-transaction process with
// uncommitted modifications, close commits them - the base Locus
// single-file atomic update on close.  A transaction's close commits
// nothing; its changes wait for the transaction's outcome.
func (s *Site) handleClose(req closeReq) error {
	if err := s.movingGuard(req.FileID); err != nil {
		return err
	}
	of, err := s.lookupOpen(req.FileID)
	if err != nil {
		return err
	}
	if req.Txn == "" {
		owner := ownerFor(req.PID, "")
		if of.file.HasMods(owner) {
			if err := of.file.Commit(owner); err != nil {
				return err
			}
		}
		// A process's own locks die with its use of the file.
		of.locks.ReleaseGroup(lockmgr.Holder{PID: req.PID}.Group())
		s.invalidateCacheGroup(lockmgr.Holder{PID: req.PID}.Group())
		s.maybeSyncReplicas(of)
	}
	s.mu.Lock()
	of.refs--
	if of.refs <= 0 && len(of.file.Owners()) == 0 && len(of.locks.Entries()) == 0 {
		delete(s.open, req.FileID)
		s.locks.Drop(req.FileID)
	}
	s.mu.Unlock()
	return nil
}

// handleSync commits a non-transaction owner's modifications immediately
// (fsync-style), using the single-file commit mechanism.
func (s *Site) handleSync(req syncReq) error {
	if err := s.movingGuard(req.FileID); err != nil {
		return err
	}
	of, err := s.lookupOpen(req.FileID)
	if err != nil {
		return err
	}
	owner := ownerFor(req.PID, req.Txn)
	if req.Txn != "" {
		return fmt.Errorf("cluster: sync inside a transaction commits at EndTrans")
	}
	if !of.file.HasMods(owner) {
		s.maybeSyncReplicas(of)
		return nil
	}
	if err := of.file.Commit(owner); err != nil {
		return err
	}
	s.maybeSyncReplicas(of)
	return nil
}

func (s *Site) handleStat(req statReq) (statResp, error) {
	if err := s.movingGuard(req.FileID); err != nil {
		return statResp{}, err
	}
	of, err := s.lookupOpen(req.FileID)
	if err != nil {
		return statResp{}, err
	}
	return statResp{Size: of.file.Size(), CommittedSize: of.file.CommittedSize()}, nil
}

// handleRead validates the access per Figure 1 and returns the bytes.
// Transaction readers must hold (at least) a shared lock over the range:
// the requesting kernel acquires it implicitly before the data request,
// so a bare storage-site check suffices here.
func (s *Site) handleRead(from simnet.SiteID, req readReq) (readResp, error) {
	if err := s.movingGuard(req.FileID); err != nil {
		return readResp{}, err
	}
	of, err := s.lookupOpen(req.FileID)
	if err != nil {
		return readResp{}, err
	}
	s.recordHeat(req.FileID, from, req.Txn)
	h := Holder(req.PID, req.Txn)
	if req.Txn != "" {
		// Coverage by the transaction's locks, or by the process's own
		// pre-transaction locks (usable within the transaction without
		// joining it, section 3.4).  A remote requester that skipped the
		// lock message on a lease hit materializes the real descriptor
		// here instead.
		pre := Holder(req.PID, "")
		if !of.locks.Covers(h, lockmgr.ModeShared, req.Off, int64(req.Len)) &&
			!of.locks.Covers(pre, lockmgr.ModeShared, req.Off, int64(req.Len)) &&
			!s.materializeLease(of, from, req.FileID, req.PID, req.Txn, lockmgr.ModeShared, req.Off, int64(req.Len)) {
			return readResp{}, fmt.Errorf("%w: transaction read of %s [%d,%d) without lock",
				lockmgr.ErrAccessDenied, req.FileID, req.Off, req.Off+int64(req.Len))
		}
	} else if err := of.locks.CheckAccess(h, false, req.Off, int64(req.Len)); err != nil {
		return readResp{}, err
	}
	buf := make([]byte, req.Len)
	n, err := of.file.ReadAt(buf, req.Off)
	if err != nil {
		return readResp{}, err
	}
	return readResp{Data: buf[:n]}, nil
}

// handleWrite validates and applies a write at the storage site.
func (s *Site) handleWrite(from simnet.SiteID, req writeReq) (writeResp, error) {
	if err := s.movingGuard(req.FileID); err != nil {
		return writeResp{}, err
	}
	of, err := s.lookupOpen(req.FileID)
	if err != nil {
		return writeResp{}, err
	}
	s.recordHeat(req.FileID, from, req.Txn)
	h := Holder(req.PID, req.Txn)
	owner := ownerFor(req.PID, req.Txn)
	length := int64(len(req.Data))
	if req.Txn != "" {
		if !of.locks.Covers(h, lockmgr.ModeExclusive, req.Off, length) {
			// A write under the process's own pre-transaction lock does
			// not join the transaction: the record belongs to the
			// process and commits at close/sync, not with the
			// transaction (section 3.4).
			pre := Holder(req.PID, "")
			if of.locks.Covers(pre, lockmgr.ModeExclusive, req.Off, length) {
				owner = ownerFor(req.PID, "")
			} else if !s.materializeLease(of, from, req.FileID, req.PID, req.Txn, lockmgr.ModeExclusive, req.Off, length) {
				return writeResp{}, fmt.Errorf("%w: transaction write of %s [%d,%d) without exclusive lock",
					lockmgr.ErrAccessDenied, req.FileID, req.Off, req.Off+length)
			}
		}
	} else {
		if err := of.locks.CheckAccess(h, true, req.Off, length); err != nil {
			return writeResp{}, err
		}
		// Unix semantics between unlocked processes: the later writer
		// wins; uncommitted bytes from other non-transaction processes
		// are taken over rather than conflicting.
		for _, or := range of.file.UncommittedOverlapping(req.Off, length) {
			if or.Owner != owner && strings.HasPrefix(string(or.Owner), "proc:") {
				of.file.TransferMods(or.Owner, owner, req.Off, length)
			}
		}
	}
	s.markOpenForUpdate(of)
	n, err := of.file.WriteAt(owner, req.Data, req.Off)
	if err != nil {
		return writeResp{}, err
	}
	return writeResp{N: n}, nil
}

// handleLock processes a lock request at the storage site (section 5.1)
// and applies rule 2 of section 3.3: locking a record that carries
// modified-but-uncommitted non-transaction data pulls those bytes into
// the transaction, and the lock is forcibly transactional (retained).
func (s *Site) handleLock(from simnet.SiteID, req lockReq) (lockResp, error) {
	if err := s.movingGuard(req.FileID); err != nil {
		return lockResp{}, err
	}
	of, err := s.lookupOpen(req.FileID)
	if err != nil {
		return lockResp{}, err
	}
	lreq := lockmgr.Request{
		Holder:   Holder(req.PID, req.Txn),
		Mode:     req.Mode,
		Off:      req.Off,
		Len:      req.Len,
		AtEOF:    req.AtEOF,
		NonTxn:   req.NonTxn,
		Wait:     req.Wait,
		FromSite: int(from),
	}
	if req.Wait {
		lreq.Timeout = s.cl.cfg.LockWaitTimeout
	}
	s.markOpenForUpdate(of)
	res, err := s.lockAt(of, req.FileID, lreq)
	if err != nil {
		return lockResp{}, err
	}
	if s.cl.cfg.PrefetchOnLock {
		of.file.Prefetch(res.Off, res.Len) //nolint:errcheck // best-effort read-ahead
	}
	if req.Txn != "" {
		s.adoptUncommitted(of, req.Txn, res.Off, res.Len)
	}
	resp := lockResp{Off: res.Off, Len: res.Len}
	// A transactional grant to a remote requester earns a lease: the
	// coverage will outlive the transaction's release, so the requester's
	// next transaction can skip the lock message entirely.
	if s.cl.cfg.LockLeases && from != s.id && req.Txn != "" && !req.NonTxn {
		if install, escalate := s.leaseGranted(req.FileID, from); install {
			if of.locks.GrantLease(int(from), req.Mode, res.Off, res.Len) {
				resp.LeaseMode = req.Mode
				resp.LeaseOff, resp.LeaseLen = res.Off, res.Len
				s.tr.Record(trace.LeaseGrant, TxnGroup(req.Txn), req.FileID, int64(from))
				if escalate && of.locks.TryEscalateLease(int(from), TxnGroup(req.Txn), req.Mode) {
					s.st.Inc(stats.LeaseEscalations)
					s.tr.Record(trace.LockEscalate, TxnGroup(req.Txn), req.FileID, int64(from))
					resp.LeaseWhole = true
				}
			}
		}
	}
	return resp, nil
}

// adoptUncommitted applies rule 2 of section 3.3 after a transactional
// lock grant: modified-but-uncommitted non-transaction bytes under the
// granted range join the transaction, and the lock is forcibly
// transactional (retained).
func (s *Site) adoptUncommitted(of *openFile, txn string, off, length int64) {
	txnOwner := TxnOwner(txn)
	for _, or := range of.file.UncommittedOverlapping(off, length) {
		if or.Owner != txnOwner && strings.HasPrefix(string(or.Owner), "proc:") {
			of.file.TransferMods(or.Owner, txnOwner, or.Off, or.Len)
			of.locks.ForceTransactional(TxnGroup(txn), off, length)
		}
	}
}

func (s *Site) handleUnlock(req unlockReq) (unlockResp, error) {
	if err := s.movingGuard(req.FileID); err != nil {
		return unlockResp{}, err
	}
	of, err := s.lookupOpen(req.FileID)
	if err != nil {
		return unlockResp{}, err
	}
	retained, err := of.locks.Unlock(Holder(req.PID, req.Txn), req.Off, req.Len)
	if err != nil {
		return unlockResp{}, err
	}
	if req.Txn != "" {
		// Also release any of the process's own pre-transaction locks on
		// the range: they are not converted to transaction locks, so
		// unlocking them really frees them (section 3.4).
		if _, err := of.locks.Unlock(Holder(req.PID, ""), req.Off, req.Len); err != nil {
			return unlockResp{}, err
		}
	}
	return unlockResp{Retained: retained}, nil
}

func (s *Site) handleList(req listReq) (listResp, error) {
	vs, err := s.volByName(req.Volume)
	if err != nil {
		return listResp{}, err
	}
	names := vs.dirList()
	// Files homed away from the mount site left this directory when they
	// moved; the namespace still lists them under their volume.
	if extra := s.cl.homesForVolume(req.Volume); len(extra) > 0 {
		have := make(map[string]bool, len(names))
		for _, n := range names {
			have[n] = true
		}
		for _, n := range extra {
			if !have[n] {
				names = append(names, n)
			}
		}
		sort.Strings(names)
	}
	return listResp{Names: names}, nil
}

// handleRemove deletes a file: the directory entry goes first (the
// committed point of the removal), then the data pages and inode are
// reclaimed.  An open file cannot be removed.
func (s *Site) handleRemove(req removeReq) error {
	if err := s.movingGuard(req.Path); err != nil {
		return err
	}
	volName, name, err := splitPath(req.Path)
	if err != nil {
		return err
	}
	vs, err := s.volByName(volName)
	if err != nil {
		return err
	}
	s.mu.Lock()
	_, open := s.open[req.Path]
	s.mu.Unlock()
	if open {
		return fmt.Errorf("cluster: %q is open; close it everywhere first", req.Path)
	}
	ino, err := vs.dirLookup(name)
	if err != nil {
		return err
	}
	node, err := vs.vol.ReadInode(ino)
	if err != nil {
		return err
	}
	if err := vs.dirRemove(name); err != nil {
		return err
	}
	for _, p := range node.Pages {
		if p >= 0 {
			if err := vs.vol.FreePage(p); err != nil {
				return err
			}
		}
	}
	node.Pages = nil
	node.Size = 0
	if err := vs.vol.WriteInode(node); err != nil {
		return err
	}
	if err := vs.vol.FreeInode(ino); err != nil {
		return err
	}
	s.cl.clearFileHome(req.Path)
	s.heat.Forget(req.Path)
	s.notifyReplicaRemove(req.Path, volName)
	return nil
}

// ---- requesting-site API (used by package core) ----

// call routes an operation to the file's storage site; a local target
// runs the handler directly with no network charge (simnet handles both).
// An errMoved refusal (the file's primary copy is mid-move) waits the
// move out and retries against the re-resolved home.
func (s *Site) callStorage(path, op string, req any) (any, error) {
	for attempt := 0; ; attempt++ {
		site, err := s.cl.StorageSite(path)
		if err != nil {
			return nil, err
		}
		resp, err := s.ep.Call(site, op, req)
		if err == nil || attempt >= movedRetries || !errors.Is(err, errMoved) {
			return resp, err
		}
		s.retryMovedWait(attempt)
	}
}

// Create makes an empty file at the path's storage site.
func (s *Site) Create(path string) error {
	s.st.Inc(stats.Syscalls)
	_, err := s.callStorage(path, "create", createReq{Path: path})
	return err
}

// Remove deletes a file and reclaims its storage.
func (s *Site) Remove(path string) error {
	s.st.Inc(stats.Syscalls)
	_, err := s.callStorage(path, "remove", removeReq{Path: path})
	return err
}

// Open resolves the path and opens the file, returning its file ID and
// current size.
func (s *Site) Open(path string) (string, int64, error) {
	s.st.Inc(stats.Syscalls)
	resp, err := s.callStorage(path, "open", openReq{Path: path})
	if err != nil {
		return "", 0, err
	}
	r := resp.(openResp)
	return r.FileID, r.Size, nil
}

// Close releases one open reference.
func (s *Site) Close(fileID string, pid int, txn string) error {
	s.st.Inc(stats.Syscalls)
	_, err := s.callStorage(fileID, "close", closeReq{FileID: fileID, PID: pid, Txn: txn})
	return err
}

// Sync commits a non-transaction process's modifications immediately.
func (s *Site) Sync(fileID string, pid int, txn string) error {
	s.st.Inc(stats.Syscalls)
	_, err := s.callStorage(fileID, "sync", syncReq{FileID: fileID, PID: pid, Txn: txn})
	return err
}

// Stat returns the file's working and committed sizes.
func (s *Site) Stat(fileID string) (size, committed int64, err error) {
	s.st.Inc(stats.Syscalls)
	resp, err := s.callStorage(fileID, "stat", statReq{FileID: fileID})
	if err != nil {
		return 0, 0, err
	}
	r := resp.(statResp)
	return r.Size, r.CommittedSize, nil
}

// List returns a volume's file names.
func (s *Site) List(volume string) ([]string, error) {
	s.st.Inc(stats.Syscalls)
	resp, err := s.callStorage(volume+"/.", "list", listReq{Volume: volume})
	if err != nil {
		return nil, err
	}
	return resp.(listResp).Names, nil
}

// Read reads from the file on behalf of the process.  For transaction
// processes the requesting kernel implicitly acquires the shared record
// lock first (section 3.1: locks may be acquired implicitly at access
// time), consulting its lock cache to skip the extra exchange when the
// transaction already holds coverage (section 5.1).
func (s *Site) Read(fileID string, pid int, txn string, off int64, n int) ([]byte, error) {
	s.st.Inc(stats.Syscalls)
	if txn != "" {
		if err := s.ensureLocked(fileID, pid, txn, lockmgr.ModeShared, off, int64(n)); err != nil {
			return nil, err
		}
	} else if data, ok := s.replicaRead(fileID, off, n); ok {
		// Served by the closest available storage site: the local
		// replica (section 5.2).  Transaction reads always go to the
		// primary, where their locks live.
		return data, nil
	}
	resp, err := s.callStorage(fileID, "read", readReq{FileID: fileID, Off: off, Len: n, PID: pid, Txn: txn})
	if err != nil {
		return nil, err
	}
	return resp.(readResp).Data, nil
}

// Write writes to the file on behalf of the process, implicitly acquiring
// the exclusive record lock for transactions.
func (s *Site) Write(fileID string, pid int, txn string, off int64, data []byte) (int, error) {
	s.st.Inc(stats.Syscalls)
	if txn != "" {
		if err := s.ensureLocked(fileID, pid, txn, lockmgr.ModeExclusive, off, int64(len(data))); err != nil {
			return 0, err
		}
	}
	resp, err := s.callStorage(fileID, "write", writeReq{FileID: fileID, Off: off, Data: data, PID: pid, Txn: txn})
	if err != nil {
		return 0, err
	}
	return resp.(writeResp).N, nil
}

// Lock issues an explicit lock request (the Lock(file,length,mode) call
// of section 3.2).  Granted locks are cached at the requesting site.
func (s *Site) Lock(fileID string, pid int, txn string, mode lockmgr.Mode, off, length int64, atEOF, nonTxn, wait bool) (lockmgr.Result, error) {
	s.st.Inc(stats.Syscalls)
	if site, err := s.cl.StorageSite(fileID); err == nil && site != s.id {
		s.st.Inc(stats.LockMsgs)
	}
	resp, err := s.callStorage(fileID, "lock", lockReq{
		FileID: fileID, PID: pid, Txn: txn, Mode: mode,
		Off: off, Len: length, AtEOF: atEOF, NonTxn: nonTxn, Wait: wait,
	})
	if err != nil {
		return lockmgr.Result{}, err
	}
	r := resp.(lockResp)
	s.cacheAdd(fileID, Holder(pid, txn).Group(), mode, r.Off, r.Len)
	if r.LeaseMode != lockmgr.ModeNone {
		s.leaseCacheAdd(fileID, r.LeaseMode, r.LeaseOff, r.LeaseLen, r.LeaseWhole)
	}
	return lockmgr.Result{Off: r.Off, Len: r.Len}, nil
}

// Unlock releases (or, for transactions, retains) the range.
func (s *Site) Unlock(fileID string, pid int, txn string, off, length int64) (bool, error) {
	s.st.Inc(stats.Syscalls)
	if site, err := s.cl.StorageSite(fileID); err == nil && site != s.id {
		s.st.Inc(stats.LockMsgs)
	}
	resp, err := s.callStorage(fileID, "unlock", unlockReq{FileID: fileID, PID: pid, Txn: txn, Off: off, Len: length})
	if err != nil {
		return false, err
	}
	// The retained lock remains reacquirable by the transaction, so the
	// cache entry stays valid for transactions; non-transaction holders
	// lose coverage.
	r := resp.(unlockResp)
	if !r.Retained {
		s.cacheTrim(fileID, Holder(pid, txn).Group(), off, length)
	}
	return r.Retained, nil
}

// ensureLocked implicitly acquires the record lock for a transaction
// access, consulting the requester's lock cache first (unless the E8
// ablation disabled it).
func (s *Site) ensureLocked(fileID string, pid int, txn string, mode lockmgr.Mode, off, length int64) error {
	group := Holder(pid, txn).Group()
	preGroup := Holder(pid, "").Group()
	if !s.cl.cfg.DisableLockCache &&
		(s.cacheCovers(fileID, group, mode, off, length) ||
			s.cacheCovers(fileID, preGroup, mode, off, length)) {
		s.st.Inc(stats.LockCacheHits)
		return nil
	}
	// The lease cache is consulted after the per-transaction cache: a
	// lease survives transaction boundaries, so a repeat access by a new
	// transaction hits here and sends no lock message at all.
	if s.cl.cfg.LockLeases && s.leaseHit(fileID, mode, off, length) {
		s.st.Inc(stats.LeaseHits)
		return nil
	}
	s.st.Inc(stats.LockCacheMisses)
	_, err := s.Lock(fileID, pid, txn, mode, off, length, false, false, true)
	return err
}

// ---- requesting-site lock cache (section 5.1) ----

func (s *Site) cacheAdd(fileID, group string, mode lockmgr.Mode, off, length int64) {
	if s.cl.cfg.DisableLockCache {
		return
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.lockCache == nil {
		s.lockCache = make(map[string][]cachedLock)
	}
	s.lockCache[fileID] = append(s.lockCache[fileID], cachedLock{group: group, mode: mode, off: off, len: length})
}

func (s *Site) cacheCovers(fileID, group string, mode lockmgr.Mode, off, length int64) bool {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	// Coverage check against the cached ranges: greedy sweep.
	need := off
	end := off + length
	for need < end {
		advanced := false
		for _, c := range s.lockCache[fileID] {
			if c.group == group && c.mode >= mode && c.off <= need && c.off+c.len > need {
				if c.off+c.len > need {
					need = c.off + c.len
					advanced = true
				}
			}
		}
		if !advanced {
			return false
		}
	}
	return true
}

func (s *Site) cacheTrim(fileID, group string, off, length int64) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	var kept []cachedLock
	for _, c := range s.lockCache[fileID] {
		if c.group != group || c.off+c.len <= off || off+length <= c.off {
			kept = append(kept, c)
			continue
		}
		if c.off < off {
			kept = append(kept, cachedLock{group: c.group, mode: c.mode, off: c.off, len: off - c.off})
		}
		if c.off+c.len > off+length {
			kept = append(kept, cachedLock{group: c.group, mode: c.mode, off: off + length, len: c.off + c.len - off - length})
		}
	}
	s.lockCache[fileID] = kept
}

// invalidateCacheGroup removes every cached lock of the group (commit,
// abort, process close).
func (s *Site) invalidateCacheGroup(group string) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	for fileID, locks := range s.lockCache {
		var kept []cachedLock
		for _, c := range locks {
			if c.group != group {
				kept = append(kept, c)
			}
		}
		s.lockCache[fileID] = kept
	}
}
