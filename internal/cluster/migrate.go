package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/proc"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Process protocol payloads.

type forkReq struct {
	PID     int // new child's pid, allocated by the requester
	Parent  int
	TxnID   string
	TopPID  int
	TopSite simnet.SiteID
}

type adoptReq struct{ Proc *proc.Process }

func (r adoptReq) WireSize() int { return 256 + 64*len(r.Proc.FileList) }

type mergeFLReq struct {
	PID   int
	Files []proc.FileRef
}

type childMovedReq struct {
	Parent int
	Child  int
	Site   simnet.SiteID
}

type whereisReq struct{ PID int }

func (s *Site) registerProcHandlers() {
	s.ep.Handle("forkproc", s.wrap(func(req any) (any, error) { return nil, s.handleFork(req.(forkReq)) }))
	s.ep.Handle("adoptproc", s.wrap(func(req any) (any, error) { return nil, s.handleAdopt(req.(adoptReq)) }))
	s.ep.Handle("mergefl", s.wrap(func(req any) (any, error) { return nil, s.handleMergeFL(req.(mergeFLReq)) }))
	s.ep.Handle("childmoved", s.wrap(func(req any) (any, error) { return nil, s.handleChildMoved(req.(childMovedReq)) }))
	s.ep.Handle("whereis", s.wrap(func(req any) (any, error) {
		here, err := s.handleWhereis(req.(whereisReq))
		return here, err
	}))
}

func (s *Site) handleFork(req forkReq) error {
	p := s.procs.NewProcess(req.PID, req.Parent)
	p.TxnID = req.TxnID
	p.TopPID = req.TopPID
	p.TopSite = req.TopSite
	s.st.Add(stats.Instructions, costmodel.InstrProcessFork)
	return nil
}

func (s *Site) handleAdopt(req adoptReq) error {
	s.procs.Adopt(req.Proc)
	return nil
}

func (s *Site) handleMergeFL(req mergeFLReq) error {
	return s.procs.MergeFileList(req.PID, req.Files)
}

func (s *Site) handleChildMoved(req childMovedReq) error {
	if req.Site < 0 {
		// Negative site marks a completed child: drop the reference.
		return s.procs.RemoveChild(req.Parent, req.Child)
	}
	return s.procs.UpdateChildSite(req.Parent, req.Child, req.Site)
}

func (s *Site) handleWhereis(req whereisReq) (bool, error) {
	_, err := s.procs.Get(req.PID)
	return err == nil, nil
}

// ---- requesting-site process operations ----

// Spawn creates a process at the target site as a child of parentPID
// (which must reside at this site).  The child inherits the parent's
// transaction identifier (section 3.1) and the location of the top-level
// process for its eventual file-list merge.
func (s *Site) Spawn(parentPID int, at simnet.SiteID) (int, error) {
	parent, err := s.procs.Info(parentPID)
	if err != nil {
		return 0, err
	}
	pid := s.cl.NewPID()
	topPID, topSite := parent.TopPID, parent.TopSite
	if parent.TopLevel {
		topPID, topSite = parent.PID, parent.Site
	}
	req := forkReq{PID: pid, Parent: parentPID, TxnID: parent.TxnID, TopPID: topPID, TopSite: topSite}
	if _, err := s.ep.Call(at, "forkproc", req); err != nil {
		return 0, err
	}
	if err := s.procs.AddChild(parentPID, proc.ChildRef{PID: pid, Site: at}); err != nil {
		return 0, err
	}
	return pid, nil
}

// Migrate moves a resident process to another site, making the move
// appear atomic via the in-transit marking of section 4.1.  A merge in
// progress defers the migration briefly (ErrBusy -> retry).
func (s *Site) Migrate(pid int, to simnet.SiteID) error {
	if to == s.id {
		return nil
	}
	var p *proc.Process
	for attempt := 0; ; attempt++ {
		var err error
		p, err = s.procs.BeginMigrate(pid)
		if err == nil {
			break
		}
		if errors.Is(err, proc.ErrBusy) && attempt < 50 {
			s.cl.cfg.Clock.Sleep(time.Millisecond)
			continue
		}
		return err
	}
	s.st.Add(stats.Instructions, costmodel.InstrProcessMigrate)
	if _, err := s.ep.Call(to, "adoptproc", adoptReq{Proc: p}); err != nil {
		s.procs.CancelMigrate(pid)
		return fmt.Errorf("cluster: migrate pid %d to %v: %w", pid, to, err)
	}
	s.procs.CompleteMigrate(pid)
	s.tr.Record(trace.Migration, "", fmt.Sprintf("pid%d", pid), int64(to))
	// Tell the parent so the abort cascade can find the child at its new
	// home; the parent itself may be migrating, so this retries until
	// the update lands at the parent's settled table.
	if p.Parent != 0 {
		s.notifyChildMoved(childMovedReq{Parent: p.Parent, Child: pid, Site: to})
	}
	return nil
}

// notifyChildMoved delivers a child-list update to whichever site holds
// the (settled) parent, retrying across migrations.  A parent that no
// longer exists anywhere is eventually given up on.
func (s *Site) notifyChildMoved(req childMovedReq) {
	for attempt := 0; attempt < 100; attempt++ {
		for _, siteID := range s.cl.Sites() {
			if _, err := s.ep.Call(siteID, "childmoved", req); err == nil {
				return
			}
		}
		s.cl.cfg.Clock.Sleep(time.Millisecond)
	}
}

// MergeToTop sends a completed child's file-list to the transaction's
// top-level process, retrying when the top-level process has migrated or
// is in transit (section 4.1).  It first tries the hint site, then asks
// around.
func (s *Site) MergeToTop(topPID int, hint simnet.SiteID, files []proc.FileRef) error {
	const attempts = 20
	var lastErr error
	try := func(site simnet.SiteID) (bool, error) {
		_, err := s.ep.Call(site, "mergefl", mergeFLReq{PID: topPID, Files: files})
		if err == nil {
			return true, nil
		}
		lastErr = err
		var re *simnet.RemoteError
		if errors.As(err, &re) {
			// Not resident or in transit: retry elsewhere/later.
			return false, nil
		}
		return false, nil // transport error: also retry
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if ok, err := try(hint); ok || err != nil {
			return err
		}
		// Ask every other site.
		for _, siteID := range s.cl.Sites() {
			if siteID == hint {
				continue
			}
			resp, err := s.ep.Call(siteID, "whereis", whereisReq{PID: topPID})
			if err != nil || resp != true {
				continue
			}
			if ok, err := try(siteID); ok || err != nil {
				return err
			}
		}
		s.cl.cfg.Clock.Sleep(time.Millisecond)
	}
	return fmt.Errorf("cluster: file-list merge to pid %d failed: %w", topPID, lastErr)
}

// ExitProc completes a process: within a transaction, its file-list is
// merged into the top-level process before the process disappears, so the
// coordinator eventually knows every file the transaction used.
func (s *Site) ExitProc(pid int) error {
	p, err := s.procs.Info(pid)
	if err != nil {
		return err
	}
	if p.TxnID != "" && !p.TopLevel && p.TopPID != 0 {
		files, err := s.procs.FileList(pid)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			if err := s.MergeToTop(p.TopPID, p.TopSite, files); err != nil {
				return err
			}
		}
	}
	// Drop from the parent's child list before the process disappears,
	// synchronously and migration-proof: EndTrans at the top level
	// checks for live children.
	if p.Parent != 0 {
		s.notifyChildMoved(childMovedReq{Parent: p.Parent, Child: pid, Site: -1})
	}
	s.procs.Remove(pid)
	return nil
}
