package cluster

import (
	"testing"

	"repro/internal/lockmgr"
	"repro/internal/proc"
	"repro/internal/simnet"
	"repro/internal/tpc"
)

// TestCrashMatrix drives the two-phase commit protocol step by step and
// injects a crash at every interesting point, verifying the section
// 4.3/4.4 guarantee: after recovery, the transaction is all-or-nothing
// across both participant sites, locks are released (or still protecting
// in-doubt data), and logs are reclaimed.
//
// Topology: coordinator log at site 3 (vc); participants site 1 (va/f)
// and site 2 (vb/f).
func TestCrashMatrix(t *testing.T) {
	const txid = "MATRIX"
	files := []proc.FileRef{
		{FileID: "va/f", StorageSite: 1},
		{FileID: "vb/f", StorageSite: 2},
	}

	type env struct {
		cl         *Cluster
		s1, s2, s3 *Site
	}
	setup := func(t *testing.T) env {
		cl := New(Config{SyncPhase2: true})
		for i := 1; i <= 3; i++ {
			cl.AddSite(simnet.SiteID(i))
		}
		for site, vol := range map[simnet.SiteID]string{1: "va", 2: "vb", 3: "vc"} {
			if err := cl.AddVolume(site, vol); err != nil {
				t.Fatal(err)
			}
		}
		e := env{cl: cl, s1: cl.Site(1), s2: cl.Site(2), s3: cl.Site(3)}
		// The transaction's writes at both participants.
		for _, site := range []*Site{e.s1, e.s2} {
			pid := cl.NewPID()
			site.Procs().NewProcess(pid, 0)
			path := "va/f"
			if site == e.s2 {
				path = "vb/f"
			}
			if err := site.Create(path); err != nil {
				t.Fatal(err)
			}
			id, _, err := site.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := site.Lock(id, pid, txid, lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
				t.Fatal(err)
			}
			if _, err := site.Write(id, pid, txid, 0, []byte("COMMITME")); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}

	coordRec := func(e env, status tpc.Status) {
		if err := tpc.WriteCoordRecord(e.s3.Volume("vc"), tpc.CoordRecord{
			Txid: txid, Files: files, Status: status,
		}); err != nil {
			t.Fatal(err)
		}
	}
	prepare := func(e env, s *Site, fileID string) {
		if err := s.handlePrepare(prepareReq{Txid: txid, FileIDs: []string{fileID}, Coord: 3}); err != nil {
			t.Fatal(err)
		}
	}
	// check verifies the all-or-nothing outcome after recovery.
	check := func(t *testing.T, e env, wantCommitted bool) {
		t.Helper()
		want := int64(0)
		if wantCommitted {
			want = 8
		}
		for site, path := range map[*Site]string{e.s1: "va/f", e.s2: "vb/f"} {
			pid := e.cl.NewPID()
			site.Procs().NewProcess(pid, 0)
			id, _, err := site.Open(path)
			if err != nil {
				t.Fatalf("open %s: %v", path, err)
			}
			_, committed, err := site.Stat(id)
			if err != nil {
				t.Fatal(err)
			}
			if committed != want {
				t.Fatalf("%s committed = %d, want %d", path, committed, want)
			}
			// Locks must be free after resolution.
			if _, err := site.Lock(id, pid, "", lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
				t.Fatalf("%s still locked after recovery: %v", path, err)
			}
			// No residual prepare records.
			vol := path[:2]
			if recs, _ := tpc.ReadPrepareRecords(site.Volume(vol)); len(recs) != 0 {
				t.Fatalf("%s has residual prepare records: %+v", path, recs)
			}
		}
	}

	t.Run("participant crash before prepare", func(t *testing.T) {
		e := setup(t)
		e.s1.Crash()
		if err := e.s1.Restart(); err != nil {
			t.Fatal(err)
		}
		// The crash aborts the transaction (topology change, section
		// 4.3): the abort cascade reaches the surviving participant.
		e.s3.AbortEverywhere(txid)
		check(t, e, false)
	})

	t.Run("one participant prepared, crash before commit point", func(t *testing.T) {
		e := setup(t)
		coordRec(e, tpc.StatusUnknown)
		prepare(e, e.s1, "va/f")
		e.s1.Crash()
		// The coordinator treats the failure before the commit point as
		// an abort (section 4.3) and cleans its log.
		e.s3.AbortEverywhere(txid)
		if err := tpc.DeleteCoordRecord(e.s3.Volume("vc"), txid); err != nil {
			t.Fatal(err)
		}
		if err := e.s1.Restart(); err != nil {
			t.Fatal(err)
		}
		// Restart finds the prepare record; the coordinator has no log,
		// so presumed abort rolls it back during participant recovery.
		if e.s1.InDoubtCount() != 0 {
			t.Fatalf("in doubt = %d, want 0 (presumed abort)", e.s1.InDoubtCount())
		}
		check(t, e, false)
	})

	t.Run("coordinator crash after commit point", func(t *testing.T) {
		e := setup(t)
		coordRec(e, tpc.StatusUnknown)
		prepare(e, e.s1, "va/f")
		prepare(e, e.s2, "vb/f")
		coordRec(e, tpc.StatusCommitted) // the commit point
		e.s3.Crash()
		if err := e.s3.Restart(); err != nil {
			t.Fatal(err)
		}
		// Coordinator recovery re-drives phase two from the durable log.
		check(t, e, true)
		if keys := e.s3.Volume("vc").Log().Keys(); len(keys) != 0 {
			t.Fatalf("coordinator log not reclaimed: %v", keys)
		}
	})

	t.Run("participant crash after commit point", func(t *testing.T) {
		e := setup(t)
		coordRec(e, tpc.StatusUnknown)
		prepare(e, e.s1, "va/f")
		prepare(e, e.s2, "vb/f")
		coordRec(e, tpc.StatusCommitted)
		// Phase two reaches site 2 only; site 1 crashes first.
		e.s1.Crash()
		if err := e.s2.handleCommit2(commit2Req{Txid: txid}); err != nil {
			t.Fatal(err)
		}
		if err := e.s1.Restart(); err != nil {
			t.Fatal(err)
		}
		// Participant recovery queried the coordinator and applied the
		// logged intentions.
		check(t, e, true)
	})

	t.Run("total failure after commit point", func(t *testing.T) {
		e := setup(t)
		coordRec(e, tpc.StatusUnknown)
		prepare(e, e.s1, "va/f")
		prepare(e, e.s2, "vb/f")
		coordRec(e, tpc.StatusCommitted)
		e.s1.Crash()
		e.s2.Crash()
		e.s3.Crash()
		// Coordinator first, then participants: every restart order that
		// brings the coordinator up before in-doubt resolution works;
		// participants restarted before it stay in doubt until resolved.
		if err := e.s3.Restart(); err != nil {
			t.Fatal(err)
		}
		if err := e.s1.Restart(); err != nil {
			t.Fatal(err)
		}
		if err := e.s2.Restart(); err != nil {
			t.Fatal(err)
		}
		check(t, e, true)
	})

	t.Run("participants restart before coordinator", func(t *testing.T) {
		e := setup(t)
		coordRec(e, tpc.StatusUnknown)
		prepare(e, e.s1, "va/f")
		prepare(e, e.s2, "vb/f")
		coordRec(e, tpc.StatusCommitted)
		e.s1.Crash()
		e.s2.Crash()
		e.s3.Crash()
		if err := e.s1.Restart(); err != nil {
			t.Fatal(err)
		}
		if err := e.s2.Restart(); err != nil {
			t.Fatal(err)
		}
		// Both are in doubt: the coordinator is down, and the retained
		// locks are re-established to protect the prepared data.
		if e.s1.InDoubtCount() != 1 || e.s2.InDoubtCount() != 1 {
			t.Fatalf("in doubt = %d/%d, want 1/1", e.s1.InDoubtCount(), e.s2.InDoubtCount())
		}
		pid := e.cl.NewPID()
		e.s1.Procs().NewProcess(pid, 0)
		id, _, err := e.s1.Open("va/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.s1.Lock(id, pid, "", lockmgr.ModeExclusive, 0, 8, false, false, false); err == nil {
			t.Fatal("in-doubt data not protected by re-established locks")
		}
		// Coordinator returns; resolution completes the commit.
		if err := e.s3.Restart(); err != nil {
			t.Fatal(err)
		}
		if n, err := e.s1.ResolveInDoubt(); err != nil || n != 0 {
			t.Fatalf("s1 resolve = %d, %v", n, err)
		}
		if n, err := e.s2.ResolveInDoubt(); err != nil || n != 0 {
			t.Fatalf("s2 resolve = %d, %v", n, err)
		}
		check(t, e, true)
	})
}
