package cluster

import (
	"fmt"
	"sort"

	"repro/internal/fs"
	"repro/internal/lockmgr"
	"repro/internal/proc"
	"repro/internal/shadow"
	"repro/internal/simnet"
	"repro/internal/tpc"
	"repro/internal/trace"
)

// Crash takes the site down: network detached, disks lose their volatile
// (unflushed) pages, and all kernel memory - open files, lock lists,
// process table, lock cache, prepared-transaction map - is forfeit.  The
// in-memory state is actually discarded at Restart, which is equivalent
// and keeps Crash callable from topology-watch goroutines.
func (s *Site) Crash() {
	s.mu.Lock()
	s.up = false
	s.epoch++
	coord := s.coord
	s.coord = nil
	vols := make([]*volState, 0, len(s.vols))
	for _, vs := range s.vols {
		vols = append(vols, vs)
	}
	for _, rep := range s.replicas {
		vols = append(vols, rep.vs)
	}
	s.mu.Unlock()
	if coord != nil {
		// The retry-timer goroutine dies with its kernel; Restart builds
		// a fresh coordinator and its Recover re-drives pending phase two.
		coord.Close()
	}
	s.cl.net.CrashSite(s.id)
	for _, vs := range vols {
		vs.disk.Crash()
	}
}

// Restart brings the site back: volumes are reloaded from stable storage,
// prepared shadow pages are pinned before any allocation, the transaction
// recovery mechanism runs before new transactions are admitted (section
// 4.4), and only then does the site rejoin the network.
//
// Recovery order, per the paper:
//
//  1. reload each volume; the load scan reclaims orphan shadow pages
//     (transactions that never prepared are thereby aborted);
//  2. pin every page named by a surviving prepare record;
//  3. resolve in-doubt prepared transactions by querying their
//     coordinators; unreachable coordinators leave the transaction in
//     doubt with its locks re-established;
//  4. replay this site's own coordinator log: committed transactions
//     re-enter phase two, anything else is aborted.
func (s *Site) Restart() error {
	s.mu.Lock()
	vols := make([]*volState, 0, len(s.vols))
	for _, vs := range s.vols {
		vols = append(vols, vs)
	}
	// Forfeit kernel memory.
	s.open = make(map[string]*openFile)
	s.locks = lockmgr.NewManager(s.st)
	s.locks.SetTracer(s.tr)
	s.locks.SetClock(s.cl.cfg.Clock)
	s.procs = proc.NewTable(s.id, s.st)
	s.prepared = make(map[string]*preparedTxn)
	s.coord = nil
	s.mu.Unlock()
	s.cacheMu.Lock()
	s.lockCache = make(map[string][]cachedLock)
	s.cacheMu.Unlock()
	s.resetLeaseState()
	s.resetMoving()

	// 1-2: reload volumes, pin prepared pages.  The old volume handles
	// are fenced first: goroutines from before the crash (phase-two
	// retries, a stale coordinator's finish) may still hold them, and a
	// write through a superseded handle lands on pages the reloaded
	// allocator has reassigned.
	for _, vs := range vols {
		if vs.vol != nil {
			vs.vol.Invalidate()
		}
		vs.disk.Restart()
		vol, err := fs.Load(vs.name, vs.disk)
		if err != nil {
			return fmt.Errorf("cluster: reload %q: %w", vs.name, err)
		}
		vol.DoubleLogWrite = s.cl.cfg.DoubleLogWrites
		vol.SetTracer(s.tr)
		vol.SetClock(s.cl.cfg.Clock)
		vol.Log().StartGroupCommit(s.cl.cfg.groupCommit())
		// The swap happens under dirMu so pinVol/dirCreateOn (an adoption
		// spanning this restart) see either old-handle-everywhere (and
		// fail on the invalidation above) or the new handle consistently.
		vs.dirMu.Lock()
		vs.vol = vol
		vs.dirMu.Unlock()
		if err := tpc.PinPreparedPages(vol); err != nil {
			return err
		}
		if err := vs.loadDirectory(); err != nil {
			return err
		}
	}
	// Reload replica volumes; conservatively forward all reads to the
	// primary until the next propagation refreshes each file.
	s.mu.Lock()
	reps := make([]*replicaState, 0, len(s.replicas))
	for _, rep := range s.replicas {
		reps = append(reps, rep)
	}
	s.mu.Unlock()
	for _, rep := range reps {
		if rep.vs.vol != nil {
			rep.vs.vol.Invalidate()
		}
		rep.vs.disk.Restart()
		vol, err := fs.Load(rep.vs.name, rep.vs.disk)
		if err != nil {
			return fmt.Errorf("cluster: reload replica %q: %w", rep.vs.name, err)
		}
		vol.SetClock(s.cl.cfg.Clock)
		rep.vs.dirMu.Lock()
		rep.vs.vol = vol
		rep.vs.dirMu.Unlock()
		if err := rep.vs.loadDirectory(); err != nil {
			return err
		}
		s.mu.Lock()
		rep.files = make(map[string]*shadow.File)
		s.mu.Unlock()
	}

	// Adaptive placement: reclaim any local copy of a file the namespace
	// homes elsewhere (an ownership move this crash interrupted), before
	// prepare-record processing - a quiesced move cannot coexist with a
	// prepared transaction, so the purge never races recovery state.
	if s.cl.cfg.AdaptivePlacement {
		s.purgeForeignFiles()
	}

	// 3a: re-register every surviving prepare record and re-establish its
	// retained locks BEFORE rejoining the network.  A commit or abort
	// retry that arrived while s.prepared was still empty would be
	// acknowledged as an idempotent duplicate, letting the coordinator
	// reclaim its log record while this site still held the transaction
	// in doubt - which presumed abort would then mis-resolve.
	for _, vs := range vols {
		recs, err := tpc.ReadPrepareRecords(vs.vol)
		if err != nil {
			return fmt.Errorf("cluster: prepare records of %q: %w", vs.name, err)
		}
		for _, rec := range recs {
			s.relockRecovered(vs, rec)
		}
	}

	// Rejoin the network so coordinator queries can flow both ways.
	s.mu.Lock()
	s.up = true
	s.mu.Unlock()
	s.cl.net.RestartSite(s.id)

	// 3b: resolve what we can now; transactions whose coordinator is
	// unreachable stay in doubt for a later ResolveInDoubt.
	if _, err := s.ResolveInDoubt(); err != nil {
		return err
	}

	// 4: coordinator recovery.
	coord, err := s.Coordinator()
	if err == nil {
		if rerr := coord.Recover(); rerr != nil {
			return fmt.Errorf("cluster: coordinator recovery at site %v: %w", s.id, rerr)
		}
	}

	// Refresh replica contents (stale copies forward to the primary
	// until the pull completes).
	s.resyncReplicas()
	s.tr.Record(trace.Recovery, "", s.id.String(), int64(s.InDoubtCount()))
	return nil
}

// relockRecovered registers an in-doubt prepared transaction after a
// restart: its prepare record is remembered (so a later commit or abort
// message can be applied from the log) and its retained locks are
// re-established so other users stay excluded until the outcome arrives.
func (s *Site) relockRecovered(vs *volState, rec tpc.PrepareRecord) {
	s.mu.Lock()
	pt := s.prepared[rec.Txid]
	if pt == nil {
		pt = &preparedTxn{coord: rec.CoordSite, recovered: true}
		s.prepared[rec.Txid] = pt
	}
	pt.recovered = true
	if rec.OnePhaseTotal > 0 {
		pt.onePhase = true
	}
	pt.records = append(pt.records, volRecord{volume: vs.name, rec: rec})
	for _, pf := range rec.Files {
		pt.fileIDs = append(pt.fileIDs, pf.FileID)
	}
	s.mu.Unlock()

	// Re-establish the retained locks from the logged lock list.  The
	// holder process is gone; the transaction group is what matters.
	h := lockmgr.Holder{PID: 0, Txn: rec.Txid}
	for _, li := range rec.Locks {
		fl := s.locks.File(li.FileID, nil)
		fl.Lock(lockmgr.Request{ //nolint:errcheck // re-granting our own logged locks cannot conflict
			Holder: h, Mode: li.Mode, Off: li.Off, Len: li.Len,
		})
	}
}

// ResolveInDoubt retries participant recovery for transactions whose
// coordinator was unreachable at restart.  Returns the number still in
// doubt.
func (s *Site) ResolveInDoubt() (int, error) {
	s.mu.Lock()
	var txids []string
	for txid, pt := range s.prepared {
		if pt.recovered {
			txids = append(txids, txid)
		}
	}
	s.mu.Unlock()
	sort.Strings(txids)

	remaining := 0
	for _, txid := range txids {
		s.mu.Lock()
		pt := s.prepared[txid]
		s.mu.Unlock()
		if pt == nil {
			continue
		}
		var st tpc.Status
		if pt.onePhase {
			// One-phase transactions resolve locally (DESIGN.md section
			// 10): the coordinator kept no log for them, so a query would
			// wrongly read presumed abort.  The record set is its own
			// verdict - complete means the last force (the commit point)
			// happened, torn means it did not.
			st = tpc.StatusAborted
			if pt.onePhaseCommitted() {
				st = tpc.StatusCommitted
			}
		} else {
			var err error
			st, err = s.QueryStatus(pt.coord, txid)
			if err != nil {
				remaining++
				continue
			}
		}
		// An apply error (including a racing delivery from the
		// coordinator itself) leaves the transaction in doubt; the next
		// resolution pass retries.
		switch st {
		case tpc.StatusCommitted:
			if err := s.handleCommit2(commit2Req{Txid: txid}); err != nil {
				remaining++
			}
		default:
			if err := s.handleAbortTxn(abortTxnReq{Txid: txid}); err != nil {
				remaining++
			}
		}
	}
	return remaining, nil
}

// InDoubtCount returns how many recovered prepared transactions still
// await their coordinator.
func (s *Site) InDoubtCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, pt := range s.prepared {
		if pt.recovered {
			n++
		}
	}
	return n
}

// Volumes returns the site's volume names, sorted.
func (s *Site) Volumes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.vols))
	for n := range s.vols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Volume returns a mounted volume (tests and tools reach through this).
func (s *Site) Volume(name string) *fs.Volume {
	s.mu.Lock()
	defer s.mu.Unlock()
	if vs, ok := s.vols[name]; ok {
		return vs.vol
	}
	return nil
}

// CrashSiteOf is a convenience for tests: crash the storage site of path.
func (c *Cluster) CrashSiteOf(path string) (simnet.SiteID, error) {
	site, err := c.StorageSite(path)
	if err != nil {
		return 0, err
	}
	c.Site(site).Crash()
	return site, nil
}
