package cluster

import (
	"testing"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/proc"
	"repro/internal/simnet"
	"repro/internal/tpc"
)

// TestPartitionDuringPhaseTwo closes the gap between the crash matrix
// (E9) and the section 4.3 partition rule: a participant partitioned
// away AFTER the commit point must not lose the commit.  The outcome is
// decided; the phase-two retry timer drives the lagging participant to
// completion once the partition heals, and duplicate commit messages
// along the way are idempotent (section 4.4).
func TestPartitionDuringPhaseTwo(t *testing.T) {
	const txid = "PHASE2"
	files := []proc.FileRef{
		{FileID: "va/f", StorageSite: 1},
		{FileID: "vb/f", StorageSite: 2},
	}

	cl := New(Config{
		SyncPhase2:    true,
		RetryInterval: 15 * time.Millisecond,
		Net: simnet.Config{
			CallTimeout:   40 * time.Millisecond,
			RetryAttempts: 2,
			RetryBase:     2 * time.Millisecond,
			RetryCap:      8 * time.Millisecond,
		},
	})
	defer cl.Shutdown()
	for i := 1; i <= 3; i++ {
		cl.AddSite(simnet.SiteID(i))
	}
	for site, vol := range map[simnet.SiteID]string{1: "va", 2: "vb", 3: "vc"} {
		if err := cl.AddVolume(site, vol); err != nil {
			t.Fatal(err)
		}
	}
	s1, s2, s3 := cl.Site(1), cl.Site(2), cl.Site(3)
	for _, st := range []struct {
		s    *Site
		path string
	}{{s1, "va/f"}, {s2, "vb/f"}} {
		pid := cl.NewPID()
		st.s.Procs().NewProcess(pid, 0)
		if err := st.s.Create(st.path); err != nil {
			t.Fatal(err)
		}
		id, _, err := st.s.Open(st.path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.s.Lock(id, pid, txid, lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
			t.Fatal(err)
		}
		if _, err := st.s.Write(id, pid, txid, 0, []byte("COMMITME")); err != nil {
			t.Fatal(err)
		}
	}

	committedSize := func(s *Site, path string) int64 {
		t.Helper()
		id, _, err := s.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		_, committed, err := s.Stat(id)
		if err != nil {
			t.Fatal(err)
		}
		return committed
	}

	// Drop every phase-two commit message to site 1: the commit point is
	// reached and site 2 completes, but site 1 stays unacknowledged.
	cl.Net().SetFaultFilter(func(from, to simnet.SiteID, op string) bool {
		return op == "commit2" && to == 1
	})
	coord, err := s3.Coordinator()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.CommitTransaction(txid, files); err != nil {
		t.Fatalf("commit failed before phase two: %v", err)
	}
	if got := committedSize(s2, "vb/f"); got != 8 {
		t.Fatalf("site 2 committed = %d, want 8", got)
	}
	if got := committedSize(s1, "va/f"); got != 0 {
		t.Fatalf("site 1 committed = %d before its commit message, want 0", got)
	}
	if coord.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", coord.PendingCount())
	}

	// Now a real partition isolates the lagging participant.  The
	// outcome is already decided, so nothing may tear it: site 1 stays
	// prepared (in doubt), the coordinator keeps retrying into the void.
	cl.Net().Partition(1)
	cl.Net().SetFaultFilter(nil)
	time.Sleep(50 * time.Millisecond) // let retry ticks fire into the partition
	if coord.PendingCount() != 1 {
		t.Fatalf("pending across partition = %d, want 1", coord.PendingCount())
	}
	if got := committedSize(s2, "vb/f"); got != 8 {
		t.Fatalf("site 2 tore a committed transaction during the partition: %d", got)
	}

	// Heal: the retry timer alone must drive phase two to completion.
	cl.Net().Heal()
	deadline := time.Now().Add(3 * time.Second)
	for coord.PendingCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("retry timer never completed phase two (pending = %d)", coord.PendingCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := committedSize(s1, "va/f"); got != 8 {
		t.Fatalf("site 1 committed = %d after heal, want 8", got)
	}

	// Duplicate commit messages are harmless (section 4.4): replay the
	// phase-two message by hand and re-audit.
	if _, err := s3.ep.Call(1, "commit2", commit2Req{Txid: txid}); err != nil {
		t.Fatalf("duplicate commit2 rejected: %v", err)
	}
	for s, path := range map[*Site]string{s1: "va/f", s2: "vb/f"} {
		if got := committedSize(s, path); got != 8 {
			t.Fatalf("%s committed = %d after duplicate commit, want 8", path, got)
		}
		id, _, err := s.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := s.Read(id, 0, "", 0, 8)
		if err != nil || string(buf) != "COMMITME" {
			t.Fatalf("%s content = %q, %v", path, buf, err)
		}
		vol := path[:2]
		if recs, _ := tpc.ReadPrepareRecords(s.Volume(vol)); len(recs) != 0 {
			t.Fatalf("%s has residual prepare records after phase two", path)
		}
	}
	if keys := s3.Volume("vc").Log().Keys(); len(keys) != 0 {
		t.Fatalf("coordinator log not reclaimed: %v", keys)
	}
}
