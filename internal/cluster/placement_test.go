package cluster

import (
	"bytes"
	"testing"

	"repro/internal/proc"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// placementCluster builds a 2-site cluster with adaptive placement on
// and aggressive knobs, so a move fires after a couple of remote
// accesses.
func placementCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.AdaptivePlacement = true
	if cfg.PlacementMinAccesses == 0 {
		cfg.PlacementMinAccesses = 2
	}
	if cfg.PlacementCooldown == 0 {
		cfg.PlacementCooldown = 2
	}
	cfg.SyncPhase2 = true
	cl := New(cfg)
	cl.AddSite(1)
	cl.AddSite(2)
	if err := cl.AddVolume(1, "va"); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddVolume(2, "vb"); err != nil {
		t.Fatal(err)
	}
	return cl
}

// commitAtHome commits at whichever site currently stores the file -
// after an ownership move that is no longer the mount site.
func commitAtHome(t *testing.T, cl *Cluster, txid string, fileIDs ...string) {
	t.Helper()
	home, err := cl.StorageSite(fileIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	commitAtStorage(t, cl.Site(home), txid, fileIDs...)
}

func TestPlacementOffMatchesLegacyByteForByte(t *testing.T) {
	// Placement off must reproduce the exact legacy counters — the
	// acceptance gate for "off by default means off".
	run := func(placement bool) stats.Snapshot {
		cfg := Config{AdaptivePlacement: placement}
		cfg.SyncPhase2 = true
		cl := New(cfg)
		cl.AddSite(1)
		cl.AddSite(2)
		if err := cl.AddVolume(1, "va"); err != nil {
			t.Fatal(err)
		}
		if err := cl.AddVolume(2, "vb"); err != nil {
			t.Fatal(err)
		}
		s2 := cl.Site(2)
		pid := cl.NewPID()
		s2.Procs().NewProcess(pid, 0)
		if err := s2.Create("va/f"); err != nil {
			t.Fatal(err)
		}
		id, _, _ := s2.Open("va/f")
		for i, txid := range []string{"T1", "T2", "T3"} {
			if _, err := s2.Write(id, pid, txid, int64(8*i), []byte("12345678")); err != nil {
				t.Fatal(err)
			}
			commitAtStorage(t, cl.Site(1), txid, id)
		}
		return cl.Stats().Snapshot()
	}
	off := run(false)
	legacy := run(false)
	if off.Get(stats.MsgsSent) != legacy.Get(stats.MsgsSent) || off.Get(stats.LockMsgs) != legacy.Get(stats.LockMsgs) {
		t.Fatalf("placement-off runs disagree with themselves: %v vs %v", off, legacy)
	}
	for _, c := range []stats.Counter{stats.OwnerMoves, stats.RoutedCommits, stats.PlacementMigrations} {
		if off.Get(c) != 0 {
			t.Fatalf("placement-off run recorded placement traffic (%v): %v", c, off)
		}
	}
}

func TestOwnershipMoveMigratesHotFile(t *testing.T) {
	cl := placementCluster(t, Config{})
	s1, s2 := cl.Site(1), cl.Site(2)
	pid := cl.NewPID()
	s2.Procs().NewProcess(pid, 0)
	if err := s2.Create("va/f"); err != nil {
		t.Fatal(err)
	}
	id, _, _ := s2.Open("va/f")

	// A run of remote transactions from site 2 heats the file until the
	// post-commit sweep migrates its primary copy there.
	for i, txid := range []string{"T1", "T2", "T3", "T4"} {
		if _, err := s2.Write(id, pid, txid, int64(4*i), []byte("abcd")); err != nil {
			t.Fatal(err)
		}
		commitAtHome(t, cl, txid, id)
	}

	home, err := cl.StorageSite(id)
	if err != nil {
		t.Fatal(err)
	}
	if home != 2 {
		t.Fatalf("file home after hot run = %v, want 2", home)
	}
	if n := cl.Stats().Snapshot().Get(stats.OwnerMoves); n != 1 {
		t.Fatalf("owner moves = %d, want 1", n)
	}

	// The committed image survived the move intact, readable from both
	// the new home and (remotely) the old one.
	want := []byte("abcdabcdabcdabcd")
	for _, s := range []*Site{s1, s2} {
		got, err := s.Read(id, pid, "", 0, len(want))
		if err != nil {
			t.Fatalf("read via site %v: %v", s.id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read via site %v = %q, want %q", s.id, got, want)
		}
	}

	// The mount site still lists the file (namespace is unchanged even
	// though the bytes moved).
	names, err := s1.List("va")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		found = found || n == "f"
	}
	if !found {
		t.Fatalf("va listing lost the moved file: %v", names)
	}

	// Life goes on at the new home: the surviving open handle writes and
	// commits without touching site 1's volume.
	if _, err := s2.Write(id, pid, "T5", 0, []byte("zzzz")); err != nil {
		t.Fatalf("write after move: %v", err)
	}
	commitAtHome(t, cl, "T5", id)
	got, err := s2.Read(id, pid, "", 0, 4)
	if err != nil || !bytes.Equal(got, []byte("zzzz")) {
		t.Fatalf("read after post-move commit = %q, %v", got, err)
	}
	if err := s2.Close(id, pid, ""); err != nil {
		t.Fatalf("close after move: %v", err)
	}
}

func TestOwnershipMoveSurvivesRestarts(t *testing.T) {
	cl := placementCluster(t, Config{})
	s1, s2 := cl.Site(1), cl.Site(2)
	pid := cl.NewPID()
	s2.Procs().NewProcess(pid, 0)
	if err := s2.Create("va/f"); err != nil {
		t.Fatal(err)
	}
	id, _, _ := s2.Open("va/f")
	for _, txid := range []string{"T1", "T2", "T3", "T4"} {
		if _, err := s2.Write(id, pid, txid, 0, []byte("data")); err != nil {
			t.Fatal(err)
		}
		commitAtHome(t, cl, txid, id)
	}
	if home, _ := cl.StorageSite(id); home != 2 {
		t.Fatalf("file did not migrate (home %v)", home)
	}
	if err := s2.Close(id, pid, ""); err != nil {
		t.Fatal(err)
	}

	// Both sites crash and restart; the old home's restart purge must
	// not resurrect a second primary, and the new home must still serve
	// the committed bytes.
	for _, s := range []*Site{s1, s2} {
		s.Crash()
		if err := s.Restart(); err != nil {
			t.Fatalf("restart site %v: %v", s.id, err)
		}
	}
	if home, _ := cl.StorageSite(id); home != 2 {
		t.Fatalf("home after restarts = %v, want 2", home)
	}
	pid2 := cl.NewPID()
	s2.Procs().NewProcess(pid2, 0)
	id2, _, err := s2.Open("va/f")
	if err != nil {
		t.Fatalf("reopen after restarts: %v", err)
	}
	got, err := s2.Read(id2, pid2, "", 0, 4)
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("read after restarts = %q, %v", got, err)
	}
	// Exactly one site's volume holds the file: the old home's directory
	// for va must not have a local copy (its listing still shows the
	// name, merged from the namespace, but the volume itself does not).
	s1.mu.Lock()
	vs1 := s1.vols["va"]
	s1.mu.Unlock()
	for _, n := range vs1.dirList() {
		if n == "f" {
			t.Fatal("old home still holds a local copy after restart purge")
		}
	}
}

func TestOwnershipMoveDeferredWhileLocked(t *testing.T) {
	cl := placementCluster(t, Config{})
	s2 := cl.Site(2)
	pid := cl.NewPID()
	s2.Procs().NewProcess(pid, 0)
	if err := s2.Create("va/f"); err != nil {
		t.Fatal(err)
	}
	id, _, _ := s2.Open("va/f")
	for _, txid := range []string{"T1", "T2", "T3"} {
		if _, err := s2.Write(id, pid, txid, 0, []byte("data")); err != nil {
			t.Fatal(err)
		}
		commitAtHome(t, cl, txid, id)
	}

	// A second process holds an uncommitted write when T-hot commits:
	// the quiesce check must refuse the move (the heat survives, so a
	// later quiet commit still migrates).
	cl2 := placementCluster(t, Config{})
	s2b := cl2.Site(2)
	pidA, pidB := cl2.NewPID(), cl2.NewPID()
	s2b.Procs().NewProcess(pidA, 0)
	s2b.Procs().NewProcess(pidB, 0)
	if err := s2b.Create("va/f"); err != nil {
		t.Fatal(err)
	}
	idB, _, _ := s2b.Open("va/f")
	if _, err := s2b.Write(idB, pidB, "THOLD", 0, []byte("hold")); err != nil {
		t.Fatal(err)
	}
	for _, txid := range []string{"T1", "T2", "T3"} {
		if _, err := s2b.Write(idB, pidA, txid, 4, []byte("data")); err != nil {
			t.Fatal(err)
		}
		commitAtHome(t, cl2, txid, idB)
	}
	if home, _ := cl2.StorageSite(idB); home != 1 {
		t.Fatalf("move proceeded past an uncommitted owner (home %v)", home)
	}
	// Release the holder; the next commit quiesces and the move lands.
	commitAtHome(t, cl2, "THOLD", idB)
	if home, _ := cl2.StorageSite(idB); home != 2 {
		t.Fatalf("move did not land after quiesce (home %v)", home)
	}
}

func TestRouteTarget(t *testing.T) {
	cl := placementCluster(t, Config{})
	refs := func(ids ...string) []proc.FileRef {
		out := make([]proc.FileRef, len(ids))
		for i, id := range ids {
			out[i] = proc.FileRef{FileID: id}
		}
		return out
	}
	if _, ok := cl.RouteTarget(2, refs()); ok {
		t.Fatal("empty file set routed")
	}
	if target, ok := cl.RouteTarget(2, refs("va/x", "va/y")); !ok || target != 1 {
		t.Fatalf("single-site remote set = (%v,%v), want (1,true)", target, ok)
	}
	if _, ok := cl.RouteTarget(1, refs("va/x")); ok {
		t.Fatal("self-stored set routed")
	}
	if _, ok := cl.RouteTarget(3, refs("va/x", "vb/y")); ok {
		t.Fatal("split set routed")
	}
}

func TestRouteCommitCoordinatesRemotely(t *testing.T) {
	cl := placementCluster(t, Config{PlacementMinAccesses: 1e9})
	s1, s2 := cl.Site(1), cl.Site(2)
	pid := cl.NewPID()
	s2.Procs().NewProcess(pid, 0)
	if err := s2.Create("va/f"); err != nil {
		t.Fatal(err)
	}
	id, _, _ := s2.Open("va/f")
	if _, err := s2.Write(id, pid, "TR", 0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := s2.RouteCommit(1, "TR", []proc.FileRef{{FileID: id, StorageSite: simnet.SiteID(1)}}); err != nil {
		t.Fatalf("routed commit: %v", err)
	}
	if n := cl.Stats().Snapshot().Get(stats.RoutedCommits); n != 1 {
		t.Fatalf("routed commits = %d, want 1", n)
	}
	got, err := s1.Read(id, pid, "", 0, 4)
	if err != nil || !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("read after routed commit = %q, %v", got, err)
	}
}
