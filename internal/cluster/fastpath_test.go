package cluster

import (
	"testing"

	"repro/internal/lockmgr"
	"repro/internal/proc"
	"repro/internal/stats"
	"repro/internal/tpc"
)

// Participant-side behavior of the commit fast paths (DESIGN.md section
// 10), driven through real sites: the read-only voter forces no prepare
// record and receives no phase-two message, the one-phase participant
// carries the commit point in its own log, and recovery resolves both
// without a coordinator.

func TestClusterReadOnlyParticipant(t *testing.T) {
	cl := twoSiteCluster(t, Config{FastPaths: true})
	s1 := cl.Site(1)
	const txid = "RO1"
	pid := cl.NewPID()
	s1.Procs().NewProcess(pid, 0)

	// Write va/f locally; shared-read vb/g at the remote site.
	for _, path := range []string{"va/f", "vb/g"} {
		if err := s1.Create(path); err != nil {
			t.Fatal(err)
		}
	}
	fid, _, err := s1.Open("va/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Lock(fid, pid, txid, lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Write(fid, pid, txid, 0, []byte("COMMITME")); err != nil {
		t.Fatal(err)
	}
	gid, _, err := s1.Open("vb/g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Lock(gid, pid, txid, lockmgr.ModeShared, 0, 8, false, false, false); err != nil {
		t.Fatal(err)
	}

	coord, err := s1.Coordinator()
	if err != nil {
		t.Fatal(err)
	}
	files := []proc.FileRef{
		{FileID: "va/f", StorageSite: 1},
		{FileID: "vb/g", StorageSite: 2},
	}
	before := cl.Stats().Snapshot()
	if err := coord.CommitTransaction(txid, files); err != nil {
		t.Fatal(err)
	}
	d := cl.Stats().Snapshot().Sub(before)

	// Only the writer site forced a prepare record.
	if got := d.Get(stats.PrepareLogWrites); got != 1 {
		t.Fatalf("PrepareLogWrites = %d, want 1 (read-only site forces nothing)", got)
	}
	if got := d.Get(stats.ReadOnlyVotes); got != 1 {
		t.Fatalf("ReadOnlyVotes = %d, want 1", got)
	}
	// One round trip to site 2 - the prepare exchange - and nothing
	// else: the read-only voter receives no phase-two message.  (The
	// writer participant is the coordinator's own site: local calls.)
	if got := d.Get(stats.MsgsSent); got != 2 {
		t.Fatalf("MsgsSent = %d, want 2 (prepare round trip only)", got)
	}
	// Site 2 kept no transaction state and released its read lock.
	if recs, _ := tpc.ReadPrepareRecords(cl.Site(2).Volume("vb")); len(recs) != 0 {
		t.Fatalf("read-only site has prepare records: %+v", recs)
	}
	pid2 := cl.NewPID()
	cl.Site(2).Procs().NewProcess(pid2, 0)
	gid2, _, err := cl.Site(2).Open("vb/g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Site(2).Lock(gid2, pid2, "", lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
		t.Fatalf("read lock not released at prepare time: %v", err)
	}
	// The write committed.
	if _, committed, _ := s1.Stat(fid); committed != 8 {
		t.Fatalf("va/f committed = %d, want 8", committed)
	}
}

func TestClusterOnePhaseCommit(t *testing.T) {
	cl := twoSiteCluster(t, Config{FastPaths: true})
	s2 := cl.Site(2) // coordinator remote from the storage site
	const txid = "OP1"
	pid := cl.NewPID()
	s2.Procs().NewProcess(pid, 0)

	if err := s2.Create("va/f"); err != nil {
		t.Fatal(err)
	}
	fid, _, err := s2.Open("va/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Lock(fid, pid, txid, lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Write(fid, pid, txid, 0, []byte("COMMITME")); err != nil {
		t.Fatal(err)
	}

	coord, err := s2.Coordinator()
	if err != nil {
		t.Fatal(err)
	}
	before := cl.Stats().Snapshot()
	if err := coord.CommitTransaction(txid, []proc.FileRef{{FileID: "va/f", StorageSite: 1}}); err != nil {
		t.Fatal(err)
	}
	d := cl.Stats().Snapshot().Sub(before)

	// The commit point moved to the participant's prepare-record force:
	// zero coordinator-side log I/O, one prepare-log force, and a single
	// round trip on the wire.
	if got := d.Get(stats.CoordLogWrites); got != 0 {
		t.Fatalf("CoordLogWrites = %d, want 0", got)
	}
	if got := d.Get(stats.PrepareLogWrites); got != 1 {
		t.Fatalf("PrepareLogWrites = %d, want 1", got)
	}
	if got := d.Get(stats.MsgsSent); got != 2 {
		t.Fatalf("MsgsSent = %d, want 2 (one combined exchange)", got)
	}
	if got := d.Get(stats.OnePhaseCommits); got != 1 {
		t.Fatalf("OnePhaseCommits = %d, want 1", got)
	}
	// The participant applied and cleaned up inside the exchange.
	if recs, _ := tpc.ReadPrepareRecords(cl.Site(1).Volume("va")); len(recs) != 0 {
		t.Fatalf("residual prepare records: %+v", recs)
	}
	if _, committed, _ := s2.Stat(fid); committed != 8 {
		t.Fatalf("committed = %d, want 8", committed)
	}
	pid1 := cl.NewPID()
	cl.Site(1).Procs().NewProcess(pid1, 0)
	fid1, _, err := cl.Site(1).Open("va/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Site(1).Lock(fid1, pid1, "", lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
		t.Fatalf("locks not released after one-phase commit: %v", err)
	}
}

// onePhasePrepared drives a transaction to the point where its one-phase
// prepare records are on disk but the outcome has not been applied -
// the window a crash exposes.
func onePhasePrepared(t *testing.T, cl *Cluster, txid string, total int) *Site {
	t.Helper()
	s1 := cl.Site(1)
	pid := cl.NewPID()
	s1.Procs().NewProcess(pid, 0)
	if err := s1.Create("va/f"); err != nil {
		t.Fatal(err)
	}
	fid, _, err := s1.Open("va/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Lock(fid, pid, txid, lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Write(fid, pid, txid, 0, []byte("COMMITME")); err != nil {
		t.Fatal(err)
	}
	// Coord site 9 does not exist: any status query would fail, proving
	// one-phase resolution never asks.
	req := prepareReq{Txid: txid, FileIDs: []string{"va/f"}, Coord: 9}
	byVol, volNames, _, err := s1.gatherPrepare(req)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		total = s1.prepareRecordCount(byVol, volNames)
	}
	if err := s1.writePrepareRecords(req, byVol, volNames, total); err != nil {
		t.Fatal(err)
	}
	return s1
}

func TestOnePhaseRecoveryCommitsCompleteSet(t *testing.T) {
	cl := twoSiteCluster(t, Config{FastPaths: true})
	s1 := onePhasePrepared(t, cl, "OPR1", 0)

	// Crash after the force (the commit point), before the apply.
	s1.Crash()
	if err := s1.Restart(); err != nil {
		t.Fatal(err)
	}
	// The complete record set self-resolves to committed - no
	// coordinator involved (site 9 is unreachable by construction).
	if n := s1.InDoubtCount(); n != 0 {
		t.Fatalf("in doubt = %d, want 0 (self-resolved)", n)
	}
	pid := cl.NewPID()
	s1.Procs().NewProcess(pid, 0)
	fid, _, err := s1.Open("va/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, committed, _ := s1.Stat(fid); committed != 8 {
		t.Fatalf("committed = %d, want 8 (complete one-phase set must commit)", committed)
	}
	if _, err := s1.Lock(fid, pid, "", lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
		t.Fatalf("locks not released: %v", err)
	}
	if recs, _ := tpc.ReadPrepareRecords(s1.Volume("va")); len(recs) != 0 {
		t.Fatalf("residual prepare records: %+v", recs)
	}
}

func TestOnePhaseRecoveryAbortsTornSet(t *testing.T) {
	cl := twoSiteCluster(t, Config{FastPaths: true})
	// The record claims a set of 2 but only 1 survives: the final force
	// - the commit point - never landed, so recovery must abort.
	s1 := onePhasePrepared(t, cl, "OPR2", 2)

	s1.Crash()
	if err := s1.Restart(); err != nil {
		t.Fatal(err)
	}
	if n := s1.InDoubtCount(); n != 0 {
		t.Fatalf("in doubt = %d, want 0 (self-resolved)", n)
	}
	pid := cl.NewPID()
	s1.Procs().NewProcess(pid, 0)
	fid, _, err := s1.Open("va/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, committed, _ := s1.Stat(fid); committed != 0 {
		t.Fatalf("committed = %d, want 0 (torn one-phase set must abort)", committed)
	}
	if _, err := s1.Lock(fid, pid, "", lockmgr.ModeExclusive, 0, 8, false, false, false); err != nil {
		t.Fatalf("locks not released: %v", err)
	}
	if recs, _ := tpc.ReadPrepareRecords(s1.Volume("va")); len(recs) != 0 {
		t.Fatalf("residual prepare records: %+v", recs)
	}
}

func TestAbortRefusedPastOnePhaseCommitPoint(t *testing.T) {
	cl := twoSiteCluster(t, Config{FastPaths: true})
	s1 := cl.Site(1)
	// A live one-phase entry exists only after its records were forced -
	// past the commit point.  A late abort (the coordinator lost the
	// ack) must be refused, not applied.
	s1.mu.Lock()
	s1.prepared["OPX"] = &preparedTxn{onePhase: true}
	s1.mu.Unlock()
	if err := s1.handleAbortTxn(abortTxnReq{Txid: "OPX"}); err == nil {
		t.Fatal("abort accepted past the one-phase commit point")
	}
}
