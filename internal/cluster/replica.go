package cluster

import (
	"errors"
	"fmt"

	"repro/internal/fs"
	"repro/internal/shadow"
	"repro/internal/simdisk"
	"repro/internal/simnet"
)

// Replication, per the end of section 5.2.  A volume may have read-only
// replicas at other sites.  Reads are served by the closest available
// storage site - the local replica when there is one.  When a file is
// opened for update (a write or a record-locking request), storage-site
// service migrates to the primary update site: the lock list lives there
// and replicas forward reads there until the file quiesces, at which
// point the primary propagates the committed contents back to the
// replicas and local reading resumes.
//
// Replication is by logical file content (path + bytes), not physical
// page numbers: each replica lays the file out on its own volume.  As in
// Locus, a replica that cannot be reached during propagation simply
// misses the update; it serves its last-synced committed state until the
// next successful propagation (optimistic availability - Locus relied on
// reconciliation for partitioned operation, which is out of scope here).

// replOwner commits propagated contents on replica volumes.
const replOwner shadow.Owner = "kernel:repl"

// Replication payloads.

type replSyncReq struct {
	Path string
	Data []byte
	Size int64
}

func (r replSyncReq) WireSize() int { return 64 + len(r.Data) }

type replUpdatingReq struct{ Path string }

type replPullReq struct {
	Volume  string
	Replica simnet.SiteID
}

type replRemoveReq struct{ Path string }

// newReplicaDisk builds the disk backing a replica volume.
func newReplicaDisk(c *Cluster, volName string, site simnet.SiteID) *simdisk.Disk {
	d := simdisk.New(fmt.Sprintf("%s@%v", volName, site), c.cfg.VolumePages, c.cfg.PageSize, c.st)
	d.SetClock(c.cfg.Clock)
	return d
}

// formatReplica formats a replica volume on its disk.
func formatReplica(name string, disk *simdisk.Disk) (*fs.Volume, error) {
	return fs.Format(name, disk, fs.Options{})
}

// AddReplica creates a read-only replica of an existing volume at another
// site and synchronizes the current committed contents.
func (c *Cluster) AddReplica(volName string, site simnet.SiteID) error {
	c.mu.Lock()
	primary, ok := c.mounts[volName]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchVolume, volName)
	}
	if primary == site {
		return fmt.Errorf("cluster: %q is already primary at %v", volName, site)
	}
	rs := c.Site(site)
	if rs == nil {
		return fmt.Errorf("cluster: no site %v", site)
	}
	rs.mu.Lock()
	if _, dup := rs.replicas[volName]; dup {
		rs.mu.Unlock()
		return fmt.Errorf("cluster: %q already replicated at %v", volName, site)
	}
	rs.mu.Unlock()

	// Build the replica volume on its own disk.
	disk := newReplicaDisk(c, volName, site)
	vol, err := formatReplica(volName, disk)
	if err != nil {
		return err
	}
	vol.SetClock(c.cfg.Clock)
	vs := &volState{name: volName, disk: disk, vol: vol}
	vs.dirMu.SetClock(c.cfg.Clock)
	if err := vs.initDirectory(); err != nil {
		return err
	}
	rs.mu.Lock()
	if rs.replicas == nil {
		rs.replicas = make(map[string]*replicaState)
	}
	rs.replicas[volName] = &replicaState{
		vs: vs, updating: make(map[string]bool), files: make(map[string]*shadow.File),
	}
	rs.mu.Unlock()

	c.mu.Lock()
	c.replicaSites[volName] = append(c.replicaSites[volName], site)
	c.mu.Unlock()

	// Initial synchronization: copy every committed file.
	ps := c.Site(primary)
	names, err := ps.List(volName)
	if err != nil {
		return err
	}
	for _, name := range names {
		path := volName + "/" + name
		if err := ps.pushFileToReplica(site, path); err != nil {
			return err
		}
	}
	return nil
}

// ReplicaSites returns the replica sites of a volume.
func (c *Cluster) ReplicaSites(volName string) []simnet.SiteID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]simnet.SiteID(nil), c.replicaSites[volName]...)
}

// replicaState is a site's local copy of a replicated volume.
type replicaState struct {
	vs       *volState
	updating map[string]bool // paths whose service migrated to the primary
	// files caches open read-only handles so repeated replica reads hit
	// the in-memory inode and clean-page cache, as the paper's buffer
	// pool did; entries refresh whenever new contents arrive.
	files map[string]*shadow.File
}

// registerReplicaHandlers installs the replica-side protocol.
func (s *Site) registerReplicaHandlers() {
	s.ep.Handle("replsync", s.wrap(func(req any) (any, error) { return nil, s.handleReplSync(req.(replSyncReq)) }))
	s.ep.Handle("replupdating", s.wrap(func(req any) (any, error) { return nil, s.handleReplUpdating(req.(replUpdatingReq)) }))
	s.ep.Handle("replpull", s.wrap(func(req any) (any, error) { return nil, s.handleReplPull(req.(replPullReq)) }))
	s.ep.Handle("replremove", s.wrap(func(req any) (any, error) { return nil, s.handleReplRemove(req.(replRemoveReq)) }))
}

// handleReplRemove mirrors a file removal onto the local replica.
func (s *Site) handleReplRemove(req replRemoveReq) error {
	rep := s.replicaFor(req.Path)
	if rep == nil {
		return fmt.Errorf("cluster: %v holds no replica for %q", s.id, req.Path)
	}
	_, name, err := splitPath(req.Path)
	if err != nil {
		return err
	}
	ino, err := rep.vs.dirLookup(name)
	if errors.Is(err, ErrNoSuchFile) {
		return nil // never synced here; nothing to do
	}
	if err != nil {
		return err
	}
	if err := rep.vs.dirRemove(name); err != nil {
		return err
	}
	node, err := rep.vs.vol.ReadInode(ino)
	if err != nil {
		return err
	}
	for _, p := range node.Pages {
		if p >= 0 {
			if err := rep.vs.vol.FreePage(p); err != nil {
				return err
			}
		}
	}
	node.Pages = nil
	node.Size = 0
	if err := rep.vs.vol.WriteInode(node); err != nil {
		return err
	}
	if err := rep.vs.vol.FreeInode(ino); err != nil {
		return err
	}
	s.mu.Lock()
	delete(rep.files, req.Path)
	delete(rep.updating, req.Path)
	s.mu.Unlock()
	return nil
}

// notifyReplicaRemove fans a removal out to the volume's replicas, best
// effort (a down replica drops the file during its restart resync).
func (s *Site) notifyReplicaRemove(path, volName string) {
	for _, site := range s.cl.ReplicaSites(volName) {
		s.ep.Call(site, "replremove", replRemoveReq{Path: path}) //nolint:errcheck
	}
}

// handleReplPull runs at a primary: a restarting replica asks for a full
// resynchronization of the volume.
func (s *Site) handleReplPull(req replPullReq) error {
	vs, err := s.volByName(req.Volume)
	if err != nil {
		return err
	}
	for _, name := range vs.dirList() {
		if err := s.pushFileToReplica(req.Replica, req.Volume+"/"+name); err != nil {
			return err
		}
	}
	return nil
}

// resyncReplicas runs after a replica site restarts: every replicated
// file is marked service-migrated (reads forward to the primary, which is
// always correct), then a full pull refreshes the local copies; files
// refreshed by the pull resume local service.  An unreachable primary
// leaves the conservative forwarding in place.
func (s *Site) resyncReplicas() {
	s.mu.Lock()
	reps := make(map[string]*replicaState, len(s.replicas))
	for name, rep := range s.replicas {
		reps[name] = rep
	}
	s.mu.Unlock()
	for volName, rep := range reps {
		s.mu.Lock()
		for _, name := range rep.vs.dirList() {
			rep.updating[volName+"/"+name] = true
		}
		s.mu.Unlock()
		primary, err := s.cl.StorageSite(volName + "/.")
		if err != nil {
			continue
		}
		s.ep.Call(primary, "replpull", replPullReq{Volume: volName, Replica: s.id}) //nolint:errcheck // primary down: keep forwarding
	}
}

// replicaFor returns the site's replica of the path's volume, if any.
func (s *Site) replicaFor(path string) *replicaState {
	volName, _, err := splitPath(path)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicas[volName]
}

// handleReplSync installs propagated file contents on the local replica
// and re-enables local reading of the path.
func (s *Site) handleReplSync(req replSyncReq) error {
	rep := s.replicaFor(req.Path)
	if rep == nil {
		return fmt.Errorf("cluster: %v holds no replica for %q", s.id, req.Path)
	}
	_, name, err := splitPath(req.Path)
	if err != nil {
		return err
	}
	ino, err := rep.vs.dirLookup(name)
	if errors.Is(err, ErrNoSuchFile) {
		ino, err = rep.vs.dirCreate(name)
	}
	if err != nil {
		return err
	}
	f, err := shadow.Open(rep.vs.vol, ino)
	if err != nil {
		return err
	}
	if len(req.Data) > 0 {
		if _, err := f.WriteAt(replOwner, req.Data, 0); err != nil {
			return err
		}
		if err := f.Commit(replOwner); err != nil {
			return err
		}
	}
	s.mu.Lock()
	delete(rep.updating, req.Path)
	rep.files[req.Path] = f // refreshed handle serves subsequent local reads
	s.mu.Unlock()
	return nil
}

// handleReplUpdating marks a path as open-for-update at the primary:
// local reads forward there until the next replsync.
func (s *Site) handleReplUpdating(req replUpdatingReq) error {
	rep := s.replicaFor(req.Path)
	if rep == nil {
		return fmt.Errorf("cluster: %v holds no replica for %q", s.id, req.Path)
	}
	s.mu.Lock()
	rep.updating[req.Path] = true
	s.mu.Unlock()
	return nil
}

// replicaRead serves a read from the local replica when permitted:
// the volume is replicated here and the file's service has not migrated
// to the primary.  It returns (nil, false) when the caller must go
// remote.
func (s *Site) replicaRead(fileID string, off int64, n int) ([]byte, bool) {
	rep := s.replicaFor(fileID)
	if rep == nil {
		return nil, false
	}
	if _, moved := s.cl.FileHome(fileID); moved {
		// The primary migrated since this replica last synced; its copy
		// refreshes from the new home on the next propagation, so reads
		// go remote until then.
		return nil, false
	}
	s.mu.Lock()
	migrated := rep.updating[fileID]
	f := rep.files[fileID]
	s.mu.Unlock()
	if migrated {
		return nil, false
	}
	if f == nil {
		_, name, err := splitPath(fileID)
		if err != nil {
			return nil, false
		}
		ino, err := rep.vs.dirLookup(name)
		if err != nil {
			return nil, false
		}
		f, err = shadow.Open(rep.vs.vol, ino)
		if err != nil {
			return nil, false
		}
		s.mu.Lock()
		rep.files[fileID] = f
		s.mu.Unlock()
	}
	buf := make([]byte, n)
	m, err := f.ReadAt(buf, off)
	if err != nil {
		return nil, false
	}
	return buf[:m], true
}

// markOpenForUpdate flags the file at its primary and tells every replica
// to forward reads (storage-site service migration).  Idempotent; called
// on the first write or lock of a file on a replicated volume.
func (s *Site) markOpenForUpdate(of *openFile) {
	s.mu.Lock()
	if of.updateMode {
		s.mu.Unlock()
		return
	}
	of.updateMode = true
	s.mu.Unlock()
	for _, site := range s.cl.ReplicaSites(of.vs.name) {
		s.ep.Call(site, "replupdating", replUpdatingReq{Path: of.id}) //nolint:errcheck // unreachable replicas serve stale data, as Locus allowed
	}
}

// maybeSyncReplicas propagates the committed contents to replicas once a
// file has quiesced (no uncommitted owners, no locks) and clears the
// open-for-update migration.
func (s *Site) maybeSyncReplicas(of *openFile) {
	s.mu.Lock()
	wasUpdating := of.updateMode
	s.mu.Unlock()
	if !wasUpdating {
		return
	}
	if len(of.file.Owners()) > 0 || len(of.locks.Entries()) > 0 {
		return
	}
	s.mu.Lock()
	of.updateMode = false
	s.mu.Unlock()
	for _, site := range s.cl.ReplicaSites(of.vs.name) {
		s.pushFileToReplica(site, of.id) //nolint:errcheck // unreachable replicas stay stale until the next push
	}
}

// pushFileToReplica ships a file's committed contents to one replica.
func (s *Site) pushFileToReplica(site simnet.SiteID, path string) error {
	vs, err := s.volFor(path)
	if err != nil {
		return err
	}
	_, name, err := splitPath(path)
	if err != nil {
		return err
	}
	ino, err := vs.dirLookup(name)
	if err != nil {
		return err
	}
	f, err := shadow.Open(vs.vol, ino)
	if err != nil {
		return err
	}
	size := f.CommittedSize()
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			return err
		}
	}
	_, err = s.ep.Call(site, "replsync", replSyncReq{Path: path, Data: data, Size: size})
	return err
}
