// Package simdisk provides a page-addressed simulated disk with
// crash-faithful write semantics and per-class I/O accounting.
//
// The paper's evaluation counts synchronous disk writes per transaction
// (Figure 5) and distinguishes data page writes, prepare log writes,
// coordinator log writes, and the phase-two inode write.  Disk exposes
// exactly that: every write is tagged with an IOKind that feeds the
// matching stats counter, and a Crash discards everything that was written
// asynchronously but never flushed, so recovery code is exercised against
// realistic post-crash images.
//
// A Disk is safe for concurrent use.
package simdisk

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/stats"
)

// IOKind classifies a disk transfer for accounting (Figure 5 regenerates
// its per-step breakdown from these classes).
type IOKind int

const (
	// IOData is an ordinary file data page (shadow pages included).
	IOData IOKind = iota
	// IOInode is a file descriptor block: the atomic pointer-replacement
	// write that commits a file (step 5 in Figure 5).
	IOInode
	// IOCoordLog is a transaction coordinator log record (steps 1 and 4).
	IOCoordLog
	// IOPrepareLog is a participant prepare log record (step 3).
	IOPrepareLog
	// IOWAL is a baseline write-ahead log record (internal/wal).
	IOWAL
	// IOMeta is filesystem metadata (superblock, allocation bitmap).
	IOMeta
)

var ioKindNames = map[IOKind]string{
	IOData:       "data",
	IOInode:      "inode",
	IOCoordLog:   "coordlog",
	IOPrepareLog: "preparelog",
	IOWAL:        "wal",
	IOMeta:       "meta",
}

// String returns a short name for the kind.
func (k IOKind) String() string {
	if s, ok := ioKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("iokind(%d)", int(k))
}

// writeCounter maps an IOKind to its dedicated stats counter (in addition
// to the aggregate DiskWrites counter).
func (k IOKind) writeCounter() (stats.Counter, bool) {
	switch k {
	case IOInode:
		return stats.InodeWrites, true
	case IOCoordLog:
		return stats.CoordLogWrites, true
	case IOPrepareLog:
		return stats.PrepareLogWrites, true
	case IOData:
		return stats.DataPageWrites, true
	case IOWAL:
		return stats.WALWrites, true
	}
	return 0, false
}

// Errors returned by Disk operations.
var (
	// ErrCrashed is returned while the disk is crashed (between Crash and
	// Restart).
	ErrCrashed = errors.New("simdisk: disk is crashed")
	// ErrOutOfRange is returned for page numbers outside the disk.
	ErrOutOfRange = errors.New("simdisk: page number out of range")
	// ErrBadSize is returned when a write's length differs from the page
	// size.
	ErrBadSize = errors.New("simdisk: data length != page size")
)

// Disk is a fixed-size array of pages with stable (flushed) and volatile
// (written but unflushed) versions.  Synchronous writes reach stable
// storage immediately; asynchronous writes sit in the volatile layer until
// Flush or FlushPage, and are lost by Crash.
type Disk struct {
	name     string
	pageSize int

	mu       sync.Mutex
	stable   [][]byte       // committed page images; nil = never written
	volatile map[int][]byte // async writes not yet flushed
	crashed  bool

	st *stats.Set
}

// New creates a disk with numPages pages of pageSize bytes each, charging
// I/O events to st (which may be nil).
func New(name string, numPages, pageSize int, st *stats.Set) *Disk {
	if numPages <= 0 || pageSize <= 0 {
		panic("simdisk: non-positive geometry")
	}
	return &Disk{
		name:     name,
		pageSize: pageSize,
		stable:   make([][]byte, numPages),
		volatile: make(map[int][]byte),
		st:       st,
	}
}

// Name returns the disk's name.
func (d *Disk) Name() string { return d.name }

// PageSize returns the size of one page in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of pages on the disk.
func (d *Disk) NumPages() int { return len(d.stable) }

// Stats returns the counter set the disk charges to (possibly nil).
func (d *Disk) Stats() *stats.Set { return d.st }

func (d *Disk) check(page int) error {
	if d.crashed {
		return ErrCrashed
	}
	if page < 0 || page >= len(d.stable) {
		return fmt.Errorf("%w: page %d of %d on %s", ErrOutOfRange, page, len(d.stable), d.name)
	}
	return nil
}

// ReadPage returns a copy of the current contents of the page: the volatile
// version if one exists, else the stable version, else a zero page.  The
// read is charged as one disk read of the given kind.
func (d *Disk) ReadPage(page int, kind IOKind) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return nil, err
	}
	d.st.Inc(stats.DiskReads)
	buf := make([]byte, d.pageSize)
	if v, ok := d.volatile[page]; ok {
		copy(buf, v)
	} else if s := d.stable[page]; s != nil {
		copy(buf, s)
	}
	return buf, nil
}

// ReadStable returns a copy of the last flushed (stable) version of the
// page, ignoring any unflushed volatile write.  The record commit
// mechanism uses this to fetch the "previous version" of a page for
// differencing (Figure 4(b)).
func (d *Disk) ReadStable(page int, kind IOKind) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return nil, err
	}
	d.st.Inc(stats.DiskReads)
	buf := make([]byte, d.pageSize)
	if s := d.stable[page]; s != nil {
		copy(buf, s)
	}
	return buf, nil
}

// WritePage writes data to the page.  If sync is true the write reaches
// stable storage immediately and is charged as one disk write; otherwise
// it lands in the volatile layer and the disk write is charged when it is
// flushed.
func (d *Disk) WritePage(page int, data []byte, kind IOKind, sync bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return err
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("%w: got %d want %d on %s page %d", ErrBadSize, len(data), d.pageSize, d.name, page)
	}
	buf := make([]byte, d.pageSize)
	copy(buf, data)
	if sync {
		d.stable[page] = buf
		delete(d.volatile, page)
		d.chargeWrite(kind)
	} else {
		d.volatile[page] = buf
	}
	return nil
}

// chargeWrite must be called with d.mu held.
func (d *Disk) chargeWrite(kind IOKind) {
	d.st.Inc(stats.DiskWrites)
	if c, ok := kind.writeCounter(); ok {
		d.st.Inc(c)
	}
}

// FlushPage forces the page's volatile version (if any) to stable storage,
// charging one disk write of the given kind.  Flushing a clean page is a
// no-op and charges nothing.
func (d *Disk) FlushPage(page int, kind IOKind) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return err
	}
	if v, ok := d.volatile[page]; ok {
		d.stable[page] = v
		delete(d.volatile, page)
		d.chargeWrite(kind)
	}
	return nil
}

// Flush forces every volatile page to stable storage, charging one data
// write per dirty page.  It returns the number of pages written.
func (d *Disk) Flush() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrCrashed
	}
	n := 0
	for page, v := range d.volatile {
		d.stable[page] = v
		delete(d.volatile, page)
		d.chargeWrite(IOData)
		n++
	}
	return n, nil
}

// DirtyPages returns the number of volatile (unflushed) pages.
func (d *Disk) DirtyPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.volatile)
}

// Crash discards all volatile writes and takes the disk offline until
// Restart.  Stable contents survive, exactly as a power failure would
// leave a real disk with a write-through cache.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.volatile = make(map[int][]byte)
	d.crashed = true
}

// Restart brings a crashed disk back online.  Restarting a healthy disk is
// a no-op.
func (d *Disk) Restart() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
}

// Crashed reports whether the disk is currently offline.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}
