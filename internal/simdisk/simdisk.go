// Package simdisk provides a page-addressed simulated disk with
// crash-faithful write semantics and per-class I/O accounting.
//
// The paper's evaluation counts synchronous disk writes per transaction
// (Figure 5) and distinguishes data page writes, prepare log writes,
// coordinator log writes, and the phase-two inode write.  Disk exposes
// exactly that: every write is tagged with an IOKind that feeds the
// matching stats counter, and a Crash discards everything that was written
// asynchronously but never flushed, so recovery code is exercised against
// realistic post-crash images.
//
// A Disk is safe for concurrent use.
package simdisk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// IOKind classifies a disk transfer for accounting (Figure 5 regenerates
// its per-step breakdown from these classes).
type IOKind int

const (
	// IOData is an ordinary file data page (shadow pages included).
	IOData IOKind = iota
	// IOInode is a file descriptor block: the atomic pointer-replacement
	// write that commits a file (step 5 in Figure 5).
	IOInode
	// IOCoordLog is a transaction coordinator log record (steps 1 and 4).
	IOCoordLog
	// IOPrepareLog is a participant prepare log record (step 3).
	IOPrepareLog
	// IOWAL is a baseline write-ahead log record (internal/wal).
	IOWAL
	// IOMeta is filesystem metadata (superblock, allocation bitmap).
	IOMeta
)

var ioKindNames = map[IOKind]string{
	IOData:       "data",
	IOInode:      "inode",
	IOCoordLog:   "coordlog",
	IOPrepareLog: "preparelog",
	IOWAL:        "wal",
	IOMeta:       "meta",
}

// String returns a short name for the kind.
func (k IOKind) String() string {
	if s, ok := ioKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("iokind(%d)", int(k))
}

// writeCounter maps an IOKind to its dedicated stats counter (in addition
// to the aggregate DiskWrites counter).
func (k IOKind) writeCounter() (stats.Counter, bool) {
	switch k {
	case IOInode:
		return stats.InodeWrites, true
	case IOCoordLog:
		return stats.CoordLogWrites, true
	case IOPrepareLog:
		return stats.PrepareLogWrites, true
	case IOData:
		return stats.DataPageWrites, true
	case IOWAL:
		return stats.WALWrites, true
	}
	return 0, false
}

// Errors returned by Disk operations.
var (
	// ErrCrashed is returned while the disk is crashed (between Crash and
	// Restart).
	ErrCrashed = errors.New("simdisk: disk is crashed")
	// ErrOutOfRange is returned for page numbers outside the disk.
	ErrOutOfRange = errors.New("simdisk: page number out of range")
	// ErrBadSize is returned when a write's length differs from the page
	// size.
	ErrBadSize = errors.New("simdisk: data length != page size")
)

// Disk is a fixed-size array of pages with stable (flushed) and volatile
// (written but unflushed) versions.  Synchronous writes reach stable
// storage immediately; asynchronous writes sit in the volatile layer until
// Flush or FlushPage, and are lost by Crash.
type Disk struct {
	name     string
	pageSize int

	mu       sync.Mutex
	stable   [][]byte       // committed page images; nil = never written
	volatile map[int][]byte // async writes not yet flushed
	crashed  bool
	// epoch counts Crash calls.  A virtual-clock force parks with d.mu
	// released; rechecking only d.crashed on wake would miss a
	// crash-then-restart landing inside the park (the flag is false
	// again), letting a pre-crash writer scribble over recovered state.
	// The epoch turns that ABA into a visible failure.
	epoch int64

	// syncDelay is the simulated cost of one forced I/O (seek + sync).
	// It is paid once per synchronous call - a WritePages batch pays it
	// once no matter how many pages it carries - and serializes through
	// the spindle, so concurrent forces queue exactly as real hardware
	// would.  Zero (the default) keeps the disk instantaneous for the
	// paper's operation-counting benchmarks.
	syncDelay time.Duration

	// clock supplies the sync-delay wait.  Under the real clock the
	// delay is slept while d.mu is held (the historical behaviour).
	// Under a virtual clock force instead reserves a spindle slot
	// (busyUntil), releases d.mu, parks until the slot's end, and
	// re-validates - so virtual time advances through queued I/O.
	clock     vtime.Clock
	busyUntil time.Time

	// crashAfter, when >= 0, crashes the disk after that many more
	// stable page writes land (the write that would exceed the budget
	// fails with ErrCrashed).  Crash-correctness tests use it to tear a
	// vectored batch mid-flush.  When crashKindSet is true only writes
	// of crashKind step (and can trip) the budget, so a fault can target
	// one I/O class - e.g. "the third log force" - while data traffic
	// passes unharmed.
	crashAfter   int
	crashKind    IOKind
	crashKindSet bool

	// writes counts stable page writes since New, per kind and in total,
	// so an exhaustive crash-schedule explorer can learn how many crash
	// points a workload has.  Monotone: survives Crash/Restart.
	writes     int64
	kindWrites map[IOKind]int64

	st *stats.Set
	// busyNS accumulates spindle busy time (syncDelay per force) so the
	// sampler can derive a busy fraction.  Queueing wait is deliberately
	// excluded: a force that queues behind another holds the spindle for
	// syncDelay only.
	busyNS *telemetry.Counter
}

// New creates a disk with numPages pages of pageSize bytes each, charging
// I/O events to st (which may be nil).
func New(name string, numPages, pageSize int, st *stats.Set) *Disk {
	if numPages <= 0 || pageSize <= 0 {
		panic("simdisk: non-positive geometry")
	}
	return &Disk{
		name:       name,
		pageSize:   pageSize,
		stable:     make([][]byte, numPages),
		volatile:   make(map[int][]byte),
		crashAfter: -1,
		kindWrites: make(map[IOKind]int64),
		clock:      vtime.Real(),
		st:         st,
		busyNS:     st.Registry().Counter("disk_busy_ns"),
	}
}

// SetClock installs the clock charging the sync delay.  Call before the
// disk sees traffic.
func (d *Disk) SetClock(c vtime.Clock) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c != nil {
		d.clock = c
	}
}

// SetSyncDelay installs the simulated per-forced-I/O latency.  Zero
// restores the instantaneous (operation-counting) behaviour.
func (d *Disk) SetSyncDelay(delay time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncDelay = delay
}

// CrashAfterWrites arms a deterministic fault: n more stable page writes
// succeed, then the disk crashes and the write in progress (and everything
// after it) fails with ErrCrashed.  Pass a negative n to disarm.
func (d *Disk) CrashAfterWrites(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAfter = n
	d.crashKindSet = false
}

// CrashAfterWritesOfKind arms the same fault restricted to one I/O
// class: only stable writes of the given kind step the budget, and the
// write that exhausts it fails with ErrCrashed.  Writes of other kinds
// proceed normally until the fault fires.  Pass a negative n to disarm.
func (d *Disk) CrashAfterWritesOfKind(kind IOKind, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAfter = n
	d.crashKind = kind
	d.crashKindSet = n >= 0
}

// StableWrites returns the number of stable page writes that have landed
// since the disk was created.  The counter is monotone across
// Crash/Restart, so an explorer can diff it around a workload to learn
// how many crash points the workload exposes.
func (d *Disk) StableWrites() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// StableWritesOfKind returns the stable write count for one I/O class.
func (d *Disk) StableWritesOfKind(kind IOKind) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kindWrites[kind]
}

// Name returns the disk's name.
func (d *Disk) Name() string { return d.name }

// PageSize returns the size of one page in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of pages on the disk.
func (d *Disk) NumPages() int { return len(d.stable) }

// Stats returns the counter set the disk charges to (possibly nil).
func (d *Disk) Stats() *stats.Set { return d.st }

func (d *Disk) check(page int) error {
	if d.crashed {
		return ErrCrashed
	}
	if page < 0 || page >= len(d.stable) {
		return fmt.Errorf("%w: page %d of %d on %s", ErrOutOfRange, page, len(d.stable), d.name)
	}
	return nil
}

// ReadPage returns a copy of the current contents of the page: the volatile
// version if one exists, else the stable version, else a zero page.  The
// read is charged as one disk read of the given kind.
func (d *Disk) ReadPage(page int, kind IOKind) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return nil, err
	}
	d.st.Inc(stats.DiskReads)
	buf := make([]byte, d.pageSize)
	if v, ok := d.volatile[page]; ok {
		copy(buf, v)
	} else if s := d.stable[page]; s != nil {
		copy(buf, s)
	}
	return buf, nil
}

// ReadStable returns a copy of the last flushed (stable) version of the
// page, ignoring any unflushed volatile write.  The record commit
// mechanism uses this to fetch the "previous version" of a page for
// differencing (Figure 4(b)).
func (d *Disk) ReadStable(page int, kind IOKind) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return nil, err
	}
	d.st.Inc(stats.DiskReads)
	buf := make([]byte, d.pageSize)
	if s := d.stable[page]; s != nil {
		copy(buf, s)
	}
	return buf, nil
}

// WritePage writes data to the page.  If sync is true the write reaches
// stable storage immediately, is charged as one disk write and one forced
// I/O, and pays the sync delay; otherwise it lands in the volatile layer
// and the disk write is charged when it is flushed.
func (d *Disk) WritePage(page int, data []byte, kind IOKind, sync bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return err
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("%w: got %d want %d on %s page %d", ErrBadSize, len(data), d.pageSize, d.name, page)
	}
	if !sync {
		buf := make([]byte, d.pageSize)
		copy(buf, data)
		d.volatile[page] = buf
		return nil
	}
	if err := d.force(); err != nil {
		return err
	}
	return d.writeStableLocked(page, data, kind)
}

// PageWrite is one page of a vectored synchronous write.
type PageWrite struct {
	Page int
	Data []byte
	Kind IOKind
}

// WritePages applies the writes to stable storage in order, as a single
// forced I/O: every page is still charged as one disk write of its kind
// (the per-page transfer cost is real), but the batch pays the seek+sync
// cost - the ForcedIOs charge and the sync delay - exactly once.  This is
// the primitive group commit builds on.
//
// The batch is atomic with respect to a concurrent Crash: under the real
// clock the disk mutex is held throughout, and under a virtual clock any
// crash (even one followed by a restart) landing in the sync-delay park
// fails the whole batch before a single page is applied.  An armed
// CrashAfterWrites fault can still tear it:
// pages are then written strictly in slice order and the remainder is
// lost, so callers ordering continuation pages before their header never
// expose a partial record.  The returned count is how many leading pages
// of the slice reached stable storage, so a torn batch's caller can tell
// which records are durable and which died with the tear.
func (d *Disk) WritePages(writes []PageWrite) (int, error) {
	if len(writes) == 0 {
		return 0, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range writes {
		if err := d.check(w.Page); err != nil {
			return 0, err
		}
		if len(w.Data) != d.pageSize {
			return 0, fmt.Errorf("%w: got %d want %d on %s page %d", ErrBadSize, len(w.Data), d.pageSize, d.name, w.Page)
		}
	}
	if err := d.force(); err != nil {
		return 0, err
	}
	for i, w := range writes {
		if err := d.writeStableLocked(w.Page, w.Data, w.Kind); err != nil {
			return i, err
		}
	}
	return len(writes), nil
}

// force charges one forced I/O and pays the sync delay.  Called with
// d.mu held.  Real clock: the delay is slept under the mutex, so the
// spindle serializes all traffic.  Virtual clock: a [busyUntil, end]
// slot is reserved, the mutex dropped while the caller parks until the
// slot ends, then retaken - queued forces complete in reservation
// order, and a crash landing during the wait fails the write.
func (d *Disk) force() error {
	d.st.Inc(stats.ForcedIOs)
	if d.syncDelay <= 0 {
		return nil
	}
	d.busyNS.Add(d.syncDelay.Nanoseconds())
	v, ok := vtime.AsVirtual(d.clock)
	if !ok {
		d.clock.Sleep(d.syncDelay)
		return nil
	}
	start := v.Now()
	if d.busyUntil.After(start) {
		start = d.busyUntil
	}
	end := start.Add(d.syncDelay)
	d.busyUntil = end
	epoch := d.epoch
	d.mu.Unlock()
	v.SleepUntil(end)
	d.mu.Lock()
	if d.crashed || d.epoch != epoch {
		return ErrCrashed
	}
	return nil
}

// writeStableLocked lands one page on stable storage, stepping the armed
// crash fault first.  Caller holds d.mu and has validated page and size.
func (d *Disk) writeStableLocked(page int, data []byte, kind IOKind) error {
	if !d.crashKindSet || kind == d.crashKind {
		if d.crashAfter == 0 {
			d.crashAfter = -1
			d.crashKindSet = false
			d.volatile = make(map[int][]byte)
			d.crashed = true
			d.epoch++
			return ErrCrashed
		}
		if d.crashAfter > 0 {
			d.crashAfter--
		}
	}
	buf := make([]byte, d.pageSize)
	copy(buf, data)
	d.stable[page] = buf
	delete(d.volatile, page)
	d.writes++
	d.kindWrites[kind]++
	d.chargeWrite(kind)
	return nil
}

// chargeWrite must be called with d.mu held.
func (d *Disk) chargeWrite(kind IOKind) {
	d.st.Inc(stats.DiskWrites)
	if c, ok := kind.writeCounter(); ok {
		d.st.Inc(c)
	}
}

// FlushPage forces the page's volatile version (if any) to stable storage,
// charging one disk write of the given kind.  Flushing a clean page is a
// no-op and charges nothing.
func (d *Disk) FlushPage(page int, kind IOKind) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(page); err != nil {
		return err
	}
	if _, ok := d.volatile[page]; ok {
		if err := d.force(); err != nil {
			return err
		}
		// the virtual-clock force drops d.mu: re-fetch, since a racing
		// flusher may have written (or a crash discarded) the page
		if v, ok := d.volatile[page]; ok {
			if err := d.writeStableLocked(page, v, kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush forces every volatile page to stable storage, charging one data
// write per dirty page.  It returns the number of pages written.
func (d *Disk) Flush() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrCrashed
	}
	if len(d.volatile) == 0 {
		return 0, nil
	}
	if err := d.force(); err != nil {
		return 0, err
	}
	n := 0
	for page, v := range d.volatile {
		if err := d.writeStableLocked(page, v, IOData); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// DirtyPages returns the number of volatile (unflushed) pages.
func (d *Disk) DirtyPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.volatile)
}

// Crash discards all volatile writes and takes the disk offline until
// Restart.  Stable contents survive, exactly as a power failure would
// leave a real disk with a write-through cache.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.volatile = make(map[int][]byte)
	d.crashed = true
	d.epoch++
}

// Restart brings a crashed disk back online and disarms any pending
// CrashAfterWrites fault.  Restarting a healthy disk is a no-op.
func (d *Disk) Restart() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.crashAfter = -1
	d.crashKindSet = false
}

// Crashed reports whether the disk is currently offline.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}
