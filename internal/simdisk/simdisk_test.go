package simdisk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func page(d *Disk, fill byte) []byte {
	b := make([]byte, d.PageSize())
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestReadBackSyncWrite(t *testing.T) {
	st := stats.NewSet()
	d := New("d0", 16, 1024, st)
	want := page(d, 0xAB)
	if err := d.WritePage(3, want, IOData, true); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(3, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back != written")
	}
	if st.Get(stats.DiskWrites) != 1 || st.Get(stats.DataPageWrites) != 1 {
		t.Fatalf("write accounting: %v", st.Snapshot())
	}
	if st.Get(stats.DiskReads) != 1 {
		t.Fatalf("read accounting: %v", st.Snapshot())
	}
}

func TestUnwrittenPageReadsZero(t *testing.T) {
	d := New("d0", 4, 512, nil)
	got, err := d.ReadPage(0, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("fresh page not zero")
	}
}

func TestAsyncWriteCrashLoses(t *testing.T) {
	d := New("d0", 8, 256, nil)
	stable := page(d, 1)
	if err := d.WritePage(2, stable, IOData, true); err != nil {
		t.Fatal(err)
	}
	volatile := page(d, 2)
	if err := d.WritePage(2, volatile, IOData, false); err != nil {
		t.Fatal(err)
	}
	// Before the crash, reads see the volatile version.
	got, err := d.ReadPage(2, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, volatile) {
		t.Fatal("read did not see volatile write")
	}
	d.Crash()
	if !d.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if _, err := d.ReadPage(2, IOData); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed disk: err = %v", err)
	}
	d.Restart()
	got, err = d.ReadPage(2, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, stable) {
		t.Fatal("crash did not discard volatile write")
	}
}

func TestFlushPageSurvivesCrash(t *testing.T) {
	st := stats.NewSet()
	d := New("d0", 8, 256, st)
	v := page(d, 7)
	if err := d.WritePage(5, v, IOData, false); err != nil {
		t.Fatal(err)
	}
	if st.Get(stats.DiskWrites) != 0 {
		t.Fatal("async write charged an I/O before flush")
	}
	if err := d.FlushPage(5, IOData); err != nil {
		t.Fatal(err)
	}
	if st.Get(stats.DiskWrites) != 1 {
		t.Fatalf("flush charged %d writes, want 1", st.Get(stats.DiskWrites))
	}
	// Flushing a clean page charges nothing.
	if err := d.FlushPage(5, IOData); err != nil {
		t.Fatal(err)
	}
	if st.Get(stats.DiskWrites) != 1 {
		t.Fatal("clean flush charged an I/O")
	}
	d.Crash()
	d.Restart()
	got, err := d.ReadPage(5, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatal("flushed page lost by crash")
	}
}

func TestFlushAll(t *testing.T) {
	d := New("d0", 8, 128, nil)
	for i := 0; i < 3; i++ {
		if err := d.WritePage(i, page(d, byte(i+1)), IOData, false); err != nil {
			t.Fatal(err)
		}
	}
	if d.DirtyPages() != 3 {
		t.Fatalf("DirtyPages = %d, want 3", d.DirtyPages())
	}
	n, err := d.Flush()
	if err != nil || n != 3 {
		t.Fatalf("Flush = %d, %v; want 3, nil", n, err)
	}
	if d.DirtyPages() != 0 {
		t.Fatal("dirty pages remain after Flush")
	}
}

func TestReadStableIgnoresVolatile(t *testing.T) {
	d := New("d0", 8, 128, nil)
	old := page(d, 0x11)
	if err := d.WritePage(0, old, IOData, true); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(0, page(d, 0x22), IOData, false); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadStable(0, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("ReadStable returned volatile contents")
	}
}

func TestIOKindAccounting(t *testing.T) {
	st := stats.NewSet()
	d := New("d0", 16, 64, st)
	kinds := []struct {
		kind IOKind
		ctr  stats.Counter
	}{
		{IOInode, stats.InodeWrites},
		{IOCoordLog, stats.CoordLogWrites},
		{IOPrepareLog, stats.PrepareLogWrites},
		{IOData, stats.DataPageWrites},
		{IOWAL, stats.WALWrites},
	}
	for i, k := range kinds {
		if err := d.WritePage(i, page(d, 1), k.kind, true); err != nil {
			t.Fatal(err)
		}
		if st.Get(k.ctr) != 1 {
			t.Fatalf("kind %v: counter %v = %d, want 1", k.kind, k.ctr, st.Get(k.ctr))
		}
	}
	// IOMeta counts only the aggregate.
	if err := d.WritePage(9, page(d, 1), IOMeta, true); err != nil {
		t.Fatal(err)
	}
	if st.Get(stats.DiskWrites) != int64(len(kinds))+1 {
		t.Fatalf("aggregate DiskWrites = %d", st.Get(stats.DiskWrites))
	}
}

func TestErrors(t *testing.T) {
	d := New("d0", 4, 128, nil)
	if _, err := d.ReadPage(4, IOData); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read page 4: %v", err)
	}
	if _, err := d.ReadPage(-1, IOData); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read page -1: %v", err)
	}
	if err := d.WritePage(0, make([]byte, 127), IOData, true); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short write: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero pages did not panic")
		}
	}()
	New("bad", 0, 128, nil)
}

func TestWriteIsolatedFromCallerBuffer(t *testing.T) {
	d := New("d0", 4, 8, nil)
	buf := page(d, 5)
	if err := d.WritePage(0, buf, IOData, true); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate after write; disk must hold its own copy
	got, err := d.ReadPage(0, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatal("disk aliased caller buffer")
	}
	got[1] = 77 // mutate returned buffer; disk must be unaffected
	again, err := d.ReadPage(0, IOData)
	if err != nil {
		t.Fatal(err)
	}
	if again[1] != 5 {
		t.Fatal("read returned aliased buffer")
	}
}

// Property: for any sequence of sync writes, the last write to each page
// wins, and a crash+restart preserves exactly the sync-written state.
func TestLastWriteWinsProperty(t *testing.T) {
	const pages = 8
	f := func(writes []struct {
		Page uint8
		Fill byte
	}) bool {
		d := New("p", pages, 16, nil)
		want := map[int]byte{}
		for _, w := range writes {
			p := int(w.Page) % pages
			b := make([]byte, 16)
			for i := range b {
				b[i] = w.Fill
			}
			if err := d.WritePage(p, b, IOData, true); err != nil {
				return false
			}
			want[p] = w.Fill
		}
		d.Crash()
		d.Restart()
		for p, fill := range want {
			got, err := d.ReadPage(p, IOData)
			if err != nil || got[0] != fill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIOKindString(t *testing.T) {
	for _, k := range []IOKind{IOData, IOInode, IOCoordLog, IOPrepareLog, IOWAL, IOMeta} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
	if IOKind(99).String() != "iokind(99)" {
		t.Fatal("unknown kind String")
	}
}

func TestWritePagesVectored(t *testing.T) {
	st := stats.NewSet()
	d := New("d", 16, 128, st)
	writes := []PageWrite{
		{Page: 1, Data: page(d, 0xAA), Kind: IOPrepareLog},
		{Page: 2, Data: page(d, 0xBB), Kind: IOPrepareLog},
		{Page: 3, Data: page(d, 0xCC), Kind: IOCoordLog},
	}
	n, err := d.WritePages(writes)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(writes) {
		t.Fatalf("WritePages wrote %d, want %d", n, len(writes))
	}
	for _, w := range writes {
		got, err := d.ReadPage(w.Page, IOMeta)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w.Data) {
			t.Fatalf("page %d not written", w.Page)
		}
	}
	if got := st.Get(stats.ForcedIOs); got != 1 {
		t.Fatalf("batch charged %d forced I/Os, want 1", got)
	}
	if got := st.Get(stats.DiskWrites); got != 3 {
		t.Fatalf("batch charged %d disk writes, want 3", got)
	}
	if got := st.Get(stats.PrepareLogWrites); got != 2 {
		t.Fatalf("prepare log writes = %d, want 2", got)
	}
	if got := st.Get(stats.CoordLogWrites); got != 1 {
		t.Fatalf("coord log writes = %d, want 1", got)
	}
	if n, err := d.WritePages(nil); err != nil || n != 0 {
		t.Fatalf("empty batch = (%d, %v)", n, err)
	}
	if got := st.Get(stats.ForcedIOs); got != 1 {
		t.Fatal("empty batch must not charge a forced I/O")
	}
}

func TestWritePagesValidatesUpFront(t *testing.T) {
	st := stats.NewSet()
	d := New("d", 8, 128, st)
	_, err := d.WritePages([]PageWrite{
		{Page: 1, Data: page(d, 1), Kind: IOData},
		{Page: 99, Data: page(d, 2), Kind: IOData},
	})
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	// Validation happens before any page lands: page 1 must be untouched.
	got, _ := d.ReadPage(1, IOMeta)
	if !bytes.Equal(got, make([]byte, 128)) {
		t.Fatal("partial batch landed despite validation error")
	}
	if st.Get(stats.DiskWrites) != 0 {
		t.Fatal("failed batch charged disk writes")
	}
}

func TestForcedIOAccounting(t *testing.T) {
	st := stats.NewSet()
	d := New("d", 8, 128, st)
	if err := d.WritePage(1, page(d, 1), IOData, true); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(2, page(d, 2), IOData, false); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(stats.ForcedIOs); got != 1 {
		t.Fatalf("forced I/Os after sync+async = %d, want 1", got)
	}
	if err := d.FlushPage(2, IOData); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(stats.ForcedIOs); got != 2 {
		t.Fatalf("forced I/Os after flush = %d, want 2", got)
	}
	// Flushing a clean page charges nothing.
	if err := d.FlushPage(2, IOData); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(stats.ForcedIOs); got != 2 {
		t.Fatal("clean FlushPage charged a forced I/O")
	}
	// A bulk Flush of N dirty pages is one force, N writes.
	for p := 3; p <= 5; p++ {
		if err := d.WritePage(p, page(d, byte(p)), IOData, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(stats.ForcedIOs); got != 3 {
		t.Fatalf("forced I/Os after bulk flush = %d, want 3", got)
	}
}

func TestCrashAfterWritesTearsBatch(t *testing.T) {
	st := stats.NewSet()
	d := New("d", 16, 128, st)
	d.CrashAfterWrites(2)
	n, err := d.WritePages([]PageWrite{
		{Page: 1, Data: page(d, 0x11), Kind: IOData},
		{Page: 2, Data: page(d, 0x22), Kind: IOData},
		{Page: 3, Data: page(d, 0x33), Kind: IOData},
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn batch err = %v, want ErrCrashed", err)
	}
	if n != 2 {
		t.Fatalf("torn batch reported %d durable pages, want 2", n)
	}
	if !d.Crashed() {
		t.Fatal("disk should be crashed after the fault fires")
	}
	d.Restart()
	for p, want := range map[int]byte{1: 0x11, 2: 0x22, 3: 0} {
		got, err := d.ReadPage(p, IOMeta)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("page %d first byte = %#x, want %#x", p, got[0], want)
		}
	}
	// Restart disarmed the fault: writes succeed again.
	if err := d.WritePage(3, page(d, 0x44), IOData, true); err != nil {
		t.Fatal(err)
	}
}

func TestStableWriteCounters(t *testing.T) {
	st := stats.NewSet()
	d := New("d", 16, 128, st)
	if d.StableWrites() != 0 {
		t.Fatal("fresh disk has nonzero write count")
	}
	if err := d.WritePage(1, page(d, 1), IOData, true); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(2, page(d, 2), IOInode, true); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(3, page(d, 3), IOData, false); err != nil {
		t.Fatal(err)
	}
	if got := d.StableWrites(); got != 2 {
		t.Fatalf("StableWrites = %d, want 2 (async write must not count until flushed)", got)
	}
	if err := d.FlushPage(3, IOData); err != nil {
		t.Fatal(err)
	}
	if got := d.StableWrites(); got != 3 {
		t.Fatalf("StableWrites = %d, want 3", got)
	}
	if got := d.StableWritesOfKind(IOData); got != 2 {
		t.Fatalf("StableWritesOfKind(IOData) = %d, want 2", got)
	}
	if got := d.StableWritesOfKind(IOInode); got != 1 {
		t.Fatalf("StableWritesOfKind(IOInode) = %d, want 1", got)
	}
	// The counter is monotone across crash/restart.
	d.Crash()
	d.Restart()
	if got := d.StableWrites(); got != 3 {
		t.Fatalf("StableWrites after crash/restart = %d, want 3", got)
	}
}

func TestCrashAfterWritesOfKind(t *testing.T) {
	st := stats.NewSet()
	d := New("d", 16, 128, st)
	// Budget of 1 inode write: data writes pass freely, the first inode
	// write lands, the second trips the fault.
	d.CrashAfterWritesOfKind(IOInode, 1)
	for p := 1; p <= 3; p++ {
		if err := d.WritePage(p, page(d, byte(p)), IOData, true); err != nil {
			t.Fatalf("data write %d: %v", p, err)
		}
	}
	if err := d.WritePage(4, page(d, 0x44), IOInode, true); err != nil {
		t.Fatalf("first inode write: %v", err)
	}
	if err := d.WritePage(5, page(d, 0x55), IOData, true); err != nil {
		t.Fatalf("data write after inode: %v", err)
	}
	err := d.WritePage(6, page(d, 0x66), IOInode, true)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("second inode write = %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("disk should be crashed")
	}
	d.Restart()
	// Restart disarms the kind filter along with the budget.
	if err := d.WritePage(6, page(d, 0x66), IOInode, true); err != nil {
		t.Fatal(err)
	}
	// Re-arming with plain CrashAfterWrites clears a previous kind filter.
	d.CrashAfterWritesOfKind(IOInode, 5)
	d.CrashAfterWrites(0)
	if err := d.WritePage(7, page(d, 0x77), IOData, true); !errors.Is(err, ErrCrashed) {
		t.Fatalf("plain re-arm should hit any kind, got %v", err)
	}
}
