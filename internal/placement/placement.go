// Package placement implements locality-adaptive placement (DESIGN.md
// section 14): the heat tracker that learns which site is actually
// using each file, the policy that decides when a file's primary copy
// should move to its dominant accessor, and the router that decides
// when a transaction (or its whole process) should travel to the data
// instead.
//
// The motivation is the ROADMAP's observation that the cheapest
// distributed commit is the one that stopped being distributed: the
// fast paths (section 10) and lock leases (section 13) make remote
// coordination cheaper per occurrence, while placement makes it rarer.
// The target metric is the fraction of transactions that commit with
// zero remote participants (stats.LocalCommits / stats.TxnCommits).
//
// Everything here is measured in *accesses*, not wall time: decay and
// cooldown advance one tick per recorded access, so a fixed-seed run
// makes exactly the same placement decisions no matter how fast the
// clock runs - the property every deterministic harness in this repo
// (crashprobe, chaos, -vtime benches) depends on.
package placement

import (
	"math"
	"sort"
	"sync"

	"repro/internal/simnet"
)

// Config tunes the placement policy.  The zero value of each knob
// selects the default noted on it.
type Config struct {
	// Threshold is the decayed access share a remote site must hold
	// before it is considered dominant (default 0.6).  Values above 0.5
	// are the hysteresis: at most one site can exceed the threshold, and
	// a site that merely ties the current owner never triggers a move.
	Threshold float64
	// MinAccesses is the decayed access mass the dominant site must have
	// accumulated on the file before a move is considered (default 8).
	// It suppresses moves driven by a handful of samples.
	MinAccesses float64
	// Cooldown is the number of accesses to a file that must elapse
	// after an ownership move before the file may move again
	// (default 32).  It bounds ping-ponging under mixed access.
	Cooldown int64
	// HalfLife is the number of accesses over which an old observation
	// loses half its weight (default 256).  Smaller values adapt faster
	// to shifting hotspots; larger values are steadier.
	HalfLife float64
}

// Defaults for the Config knobs.
const (
	DefaultThreshold   = 0.6
	DefaultMinAccesses = 8
	DefaultCooldown    = 32
	DefaultHalfLife    = 256
)

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.MinAccesses <= 0 {
		c.MinAccesses = DefaultMinAccesses
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	return c
}

// fileHeat is one file's decayed per-accessor-site access counts.
type fileHeat struct {
	counts   map[simnet.SiteID]float64
	tick     int64 // file-local access count (cooldown clock)
	decayed  int64 // t.tick value at the last decay application
	lastMove int64 // fileHeat.tick at the last ownership move, -1 if never
}

// Tracker maintains decayed per-(file, accessor-site) access counts for
// one storage site.  Record is O(1) amortized: decay is applied lazily,
// per file, only when that file is next touched or queried.  Safe for
// concurrent use.
type Tracker struct {
	cfg   Config
	decay float64 // per-tick multiplier: 2^(-1/HalfLife)

	mu    sync.Mutex
	tick  int64 // global access counter (decay clock)
	files map[string]*fileHeat
}

// NewTracker builds a tracker with the given knobs (zero values take
// the defaults).
func NewTracker(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{
		cfg:   cfg,
		decay: math.Exp2(-1 / cfg.HalfLife),
		files: make(map[string]*fileHeat),
	}
}

// Config returns the tracker's resolved knobs.
func (t *Tracker) Config() Config { return t.cfg }

// age applies the decay owed to f since it was last touched.  Caller
// holds t.mu.
func (t *Tracker) age(f *fileHeat) {
	dt := t.tick - f.decayed
	if dt <= 0 {
		return
	}
	m := math.Pow(t.decay, float64(dt))
	for s, v := range f.counts {
		v *= m
		if v < 1e-6 {
			delete(f.counts, s)
		} else {
			f.counts[s] = v
		}
	}
	f.decayed = t.tick
}

// Record counts one access to path by accessor site.  Nil-safe: a nil
// tracker records nothing, so call sites need no placement-enabled
// guard.
func (t *Tracker) Record(path string, site simnet.SiteID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tick++
	f := t.files[path]
	if f == nil {
		f = &fileHeat{counts: make(map[simnet.SiteID]float64), decayed: t.tick, lastMove: -1}
		t.files[path] = f
	}
	t.age(f)
	f.counts[site]++
	f.tick++
	t.mu.Unlock()
}

// Dominant reports the remote site that should own path, if any: the
// site with the highest decayed count, provided it is not self, holds
// at least Threshold of the file's total mass and MinAccesses of
// absolute mass, and the file's cooldown has elapsed.  Ties break to
// the lowest site id, keeping fixed-seed runs deterministic.
func (t *Tracker) Dominant(path string, self simnet.SiteID) (simnet.SiteID, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.files[path]
	if f == nil {
		return 0, false
	}
	if f.lastMove >= 0 && f.tick-f.lastMove < t.cfg.Cooldown {
		return 0, false
	}
	t.age(f)
	var total float64
	var best simnet.SiteID
	bestV := -1.0
	sites := make([]simnet.SiteID, 0, len(f.counts))
	for s := range f.counts {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		v := f.counts[s]
		total += v
		if v > bestV {
			best, bestV = s, v
		}
	}
	if best == self || total <= 0 {
		return 0, false
	}
	if bestV < t.cfg.MinAccesses || bestV/total < t.cfg.Threshold {
		return 0, false
	}
	return best, true
}

// NoteMove stamps path's cooldown clock after an ownership move.
func (t *Tracker) NoteMove(path string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if f := t.files[path]; f != nil {
		f.lastMove = f.tick
	}
	t.mu.Unlock()
}

// Forget drops path's heat (file removed, or ownership handed away -
// the new owner starts its own view).
func (t *Tracker) Forget(path string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.files, path)
	t.mu.Unlock()
}

// Shares returns path's current decayed access shares by site, for
// tests and monitoring.  The map is a copy.
func (t *Tracker) Shares(path string) map[simnet.SiteID]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.files[path]
	if f == nil {
		return nil
	}
	t.age(f)
	var total float64
	for _, v := range f.counts {
		total += v
	}
	out := make(map[simnet.SiteID]float64, len(f.counts))
	for s, v := range f.counts {
		out[s] = v / total
	}
	return out
}
