package placement

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simnet"
)

func TestDominantRequiresThresholdAndMass(t *testing.T) {
	tr := NewTracker(Config{Threshold: 0.6, MinAccesses: 4, Cooldown: 8})
	const self = simnet.SiteID(1)

	// Below the mass floor: no move even at 100% share.
	for i := 0; i < 3; i++ {
		tr.Record("v1/f", 2)
	}
	if _, ok := tr.Dominant("v1/f", self); ok {
		t.Fatal("dominant below MinAccesses")
	}
	// Past the floor: site 2 dominates.
	for i := 0; i < 5; i++ {
		tr.Record("v1/f", 2)
	}
	if s, ok := tr.Dominant("v1/f", self); !ok || s != 2 {
		t.Fatalf("Dominant = %v,%v, want 2,true", s, ok)
	}
	// The dominant accessor being self means no move.
	if _, ok := tr.Dominant("v1/f", 2); ok {
		t.Fatal("self-dominant file reported movable")
	}
}

func TestDominantHysteresis(t *testing.T) {
	tr := NewTracker(Config{Threshold: 0.6, MinAccesses: 2, Cooldown: 4})
	const self = simnet.SiteID(1)
	// A 50/50 split never crosses a >0.5 threshold.
	for i := 0; i < 20; i++ {
		tr.Record("v1/f", 2)
		tr.Record("v1/f", 3)
	}
	if s, ok := tr.Dominant("v1/f", self); ok {
		t.Fatalf("tied accessors reported dominant %v", s)
	}
}

func TestCooldownBlocksRemove(t *testing.T) {
	tr := NewTracker(Config{Threshold: 0.6, MinAccesses: 2, Cooldown: 10})
	const self = simnet.SiteID(1)
	for i := 0; i < 5; i++ {
		tr.Record("v1/f", 2)
	}
	if _, ok := tr.Dominant("v1/f", self); !ok {
		t.Fatal("no dominant before move")
	}
	tr.NoteMove("v1/f")
	for i := 0; i < 9; i++ {
		tr.Record("v1/f", 2)
		if _, ok := tr.Dominant("v1/f", self); ok {
			t.Fatalf("dominant during cooldown at access %d", i)
		}
	}
	tr.Record("v1/f", 2)
	if _, ok := tr.Dominant("v1/f", self); !ok {
		t.Fatal("no dominant after cooldown elapsed")
	}
}

func TestDecayForgetsColdAccessor(t *testing.T) {
	// Short half-life: an old majority fades once a new site takes over.
	tr := NewTracker(Config{Threshold: 0.6, MinAccesses: 2, Cooldown: 1, HalfLife: 8})
	const self = simnet.SiteID(1)
	for i := 0; i < 40; i++ {
		tr.Record("v1/f", 2)
	}
	if s, _ := tr.Dominant("v1/f", self); s != 2 {
		t.Fatalf("initial dominant = %v", s)
	}
	// Site 3 becomes the sole accessor; site 2's mass halves every 8
	// accesses, so well under 40 accesses flips dominance.
	for i := 0; i < 40; i++ {
		tr.Record("v1/f", 3)
	}
	if s, ok := tr.Dominant("v1/f", self); !ok || s != 3 {
		t.Fatalf("after shift Dominant = %v,%v, want 3,true", s, ok)
	}
	shares := tr.Shares("v1/f")
	if shares[3] < 0.9 {
		t.Fatalf("site 3 share = %.3f after takeover, want > 0.9", shares[3])
	}
}

func TestForgetDropsHeat(t *testing.T) {
	tr := NewTracker(Config{MinAccesses: 1, Threshold: 0.51, Cooldown: 1})
	for i := 0; i < 10; i++ {
		tr.Record("v1/f", 2)
	}
	tr.Forget("v1/f")
	if _, ok := tr.Dominant("v1/f", 1); ok {
		t.Fatal("forgotten file still dominant")
	}
	if tr.Shares("v1/f") != nil {
		t.Fatal("forgotten file still has shares")
	}
}

func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.Record("x", 1)
	tr.NoteMove("x")
	tr.Forget("x")
	if _, ok := tr.Dominant("x", 1); ok {
		t.Fatal("nil tracker dominant")
	}
	if tr.Shares("x") != nil {
		t.Fatal("nil tracker shares")
	}
}

func TestRouterPrefersDominantRemote(t *testing.T) {
	r := NewRouter(Config{Threshold: 0.6, MinAccesses: 4})
	m := costmodel.Vax750()
	const self = simnet.SiteID(1)
	// Every transaction does 8 ops against site 2's storage: migrating
	// (26 ms on the Vax model) beats 8 round trips (128 ms).
	for i := 0; i < 4; i++ {
		r.NoteTxn(7, map[simnet.SiteID]int{2: 8})
	}
	if s, ok := r.Preferred(7, self, m); !ok || s != 2 {
		t.Fatalf("Preferred = %v,%v, want 2,true", s, ok)
	}
	// From site 2's own point of view there is nothing to do.
	if _, ok := r.Preferred(7, 2, m); ok {
		t.Fatal("router suggested migrating to self")
	}
	// An unknown process has no preference.
	if _, ok := r.Preferred(99, self, m); ok {
		t.Fatal("unknown pid preferred")
	}
	r.Forget(7)
	if _, ok := r.Preferred(7, self, m); ok {
		t.Fatal("forgotten pid preferred")
	}
}

func TestRouterRespectsCostModel(t *testing.T) {
	r := NewRouter(Config{Threshold: 0.6, MinAccesses: 2})
	m := costmodel.Vax750()
	// One op per transaction: one 16 ms round trip saved never repays a
	// 26 ms migration.
	for i := 0; i < 8; i++ {
		r.NoteTxn(7, map[simnet.SiteID]int{2: 1})
	}
	if s, ok := r.Preferred(7, 1, m); ok {
		t.Fatalf("uneconomic migration preferred to %v", s)
	}
	if MigratePays(m, 1) {
		t.Fatal("MigratePays(1 op) on Vax750")
	}
	if !MigratePays(m, 8) {
		t.Fatal("!MigratePays(8 ops) on Vax750")
	}
}

func TestNilRouterSafe(t *testing.T) {
	var r *Router
	r.NoteTxn(1, map[simnet.SiteID]int{2: 3})
	r.Forget(1)
	if _, ok := r.Preferred(1, 1, costmodel.Vax750()); ok {
		t.Fatal("nil router preferred")
	}
}
