package placement

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/simnet"
)

// Router decides, at transaction begin, whether the computation should
// travel to the data: it keeps a decayed per-process affinity profile
// (which storage sites the process's recent transactions actually
// touched, and how many operations each one cost) and weighs a process
// migration against staying put under the bench's cost model.
//
// The router complements the tracker: the tracker moves *files* toward
// stable accessors, the router moves *processes* toward data too hot or
// too contended to migrate (e.g. a file dominated by a site the process
// doesn't run on, or many files co-located away from the process).
// Safe for concurrent use; nil-safe like the tracker.
type Router struct {
	cfg   Config
	decay float64

	mu    sync.Mutex
	procs map[int]*procAffinity
}

// procAffinity is one process's decayed operation counts by storage
// site, plus its transaction count (for the ops/txn forecast).
type procAffinity struct {
	ops  map[simnet.SiteID]float64
	txns float64
	tick int64
}

// NewRouter builds a router sharing the tracker's knob semantics:
// Threshold is the operation share a remote site must hold, MinAccesses
// the decayed operation mass, HalfLife the decay horizon (in recorded
// transactions).  Cooldown is unused - Migrate itself is the hysteresis,
// since after a move the dominant site is no longer remote.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	return &Router{
		cfg:   cfg,
		decay: math.Exp2(-1 / cfg.HalfLife),
		procs: make(map[int]*procAffinity),
	}
}

// NoteTxn feeds one finished transaction's per-site operation counts
// into pid's profile.
func (r *Router) NoteTxn(pid int, opsBySite map[simnet.SiteID]int) {
	if r == nil || len(opsBySite) == 0 {
		return
	}
	r.mu.Lock()
	p := r.procs[pid]
	if p == nil {
		p = &procAffinity{ops: make(map[simnet.SiteID]float64)}
		r.procs[pid] = p
	}
	p.txns = p.txns*r.decay + 1
	for s, v := range p.ops {
		v *= r.decay
		if v < 1e-6 {
			delete(p.ops, s)
		} else {
			p.ops[s] = v
		}
	}
	for s, n := range opsBySite {
		p.ops[s] += float64(n)
	}
	p.tick++
	r.mu.Unlock()
}

// Preferred reports the remote site pid's transactions should run at,
// if the profile is decisive: the dominant site must hold Threshold of
// the decayed operation mass, MinAccesses of absolute mass, and the
// migration must score cheaper under the model (MigratePays).  Ties
// break to the lowest site id.
func (r *Router) Preferred(pid int, self simnet.SiteID, m costmodel.Model) (simnet.SiteID, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.procs[pid]
	if p == nil || p.txns <= 0 {
		return 0, false
	}
	var total float64
	var best simnet.SiteID
	bestV := -1.0
	sites := make([]simnet.SiteID, 0, len(p.ops))
	for s := range p.ops {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		v := p.ops[s]
		total += v
		if v > bestV {
			best, bestV = s, v
		}
	}
	if best == self || total <= 0 {
		return 0, false
	}
	if bestV < r.cfg.MinAccesses || bestV/total < r.cfg.Threshold {
		return 0, false
	}
	if !MigratePays(m, bestV/p.txns) {
		return 0, false
	}
	return best, true
}

// Forget drops pid's profile (process exited or migrated - the new
// site builds its own view, with the local/remote roles swapped).
func (r *Router) Forget(pid int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.procs, pid)
	r.mu.Unlock()
}

// MigratePays scores a process migration against staying put, under
// the cost model: a migration costs InstrProcessMigrate of CPU plus one
// message round trip, and saves one round trip per remote operation the
// next transaction is forecast to make.  opsPerTxn is that forecast.
func MigratePays(m costmodel.Model, opsPerTxn float64) bool {
	migrate := time.Duration(costmodel.InstrProcessMigrate)*m.InstrTime + 2*m.MsgTime
	stay := time.Duration(opsPerTxn * float64(2*m.MsgTime))
	return stay > migrate
}
