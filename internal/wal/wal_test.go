package wal

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fs"
	"repro/internal/simdisk"
	"repro/internal/stats"
)

const testPageSize = 256

func newWAL(t *testing.T) (*fs.Volume, *Manager, *File) {
	t.Helper()
	st := stats.NewSet()
	d := simdisk.New("d0", 128, testPageSize, st)
	v, err := fs.Format("vol0", d, fs.Options{NumInodes: 4, LogPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(v, 16)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := v.AllocInode()
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(m, ino)
	if err != nil {
		t.Fatal(err)
	}
	return v, m, f
}

func TestWriteReadThroughBuffer(t *testing.T) {
	_, _, f := newWAL(t)
	data := []byte("buffered update")
	if _, err := f.WriteAt("txn:1", data, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
	if f.Size() != 5+int64(len(data)) {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestCommitForcesOnlyLog(t *testing.T) {
	v, _, f := newWAL(t)
	if _, err := f.WriteAt("txn:1", []byte("small record"), 0); err != nil {
		t.Fatal(err)
	}
	before := v.Stats().Snapshot()
	if err := f.Commit("txn:1"); err != nil {
		t.Fatal(err)
	}
	d := v.Stats().Snapshot().Sub(before)
	// One small record + commit mark fits in one log page: exactly one
	// forced write, zero data/inode writes (deferred to checkpoint).
	if d.Get(stats.WALWrites) != 1 {
		t.Fatalf("WALWrites = %d, want 1", d.Get(stats.WALWrites))
	}
	if d.Get(stats.DataPageWrites) != 0 || d.Get(stats.InodeWrites) != 0 {
		t.Fatalf("commit forced data/inode writes: %v", d)
	}
}

func TestAbortIsFree(t *testing.T) {
	v, _, f := newWAL(t)
	if _, err := f.WriteAt("txn:1", []byte("doomed"), 0); err != nil {
		t.Fatal(err)
	}
	before := v.Stats().Snapshot()
	if err := f.Abort("txn:1"); err != nil {
		t.Fatal(err)
	}
	d := v.Stats().Snapshot().Sub(before)
	if d.Get(stats.DiskWrites) != 0 || d.Get(stats.DiskReads) != 0 {
		t.Fatalf("abort cost I/O: %v", d)
	}
	if f.Size() != 0 {
		t.Fatalf("Size after abort = %d", f.Size())
	}
	got := make([]byte, 6)
	if n, _ := f.ReadAt(got, 0); n != 0 {
		t.Fatal("aborted bytes visible")
	}
	if err := f.Abort("txn:1"); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("double abort: %v", err)
	}
}

func TestCheckpointMakesDurable(t *testing.T) {
	v, m, f := newWAL(t)
	data := []byte("durable after checkpoint")
	if _, err := f.WriteAt("txn:1", data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit("txn:1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash and reload: the in-place state must survive without replay.
	v.Disk().Crash()
	v.Disk().Restart()
	v2, err := fs.Load("vol0", v.Disk())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Attach(v2, m.Pages())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(m2, f.Ino())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("after checkpoint+crash: %q", got)
	}
}

func TestRecoveryRedoesCommitted(t *testing.T) {
	v, m, f := newWAL(t)
	committed := []byte("committed-record")
	uncommitted := []byte("UNCOMMITTED")
	if _, err := f.WriteAt("txn:C", committed, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit("txn:C"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt("txn:U", uncommitted, 100); err != nil {
		t.Fatal(err)
	}
	// Crash before any checkpoint: in-place writes were volatile.
	pages := m.Pages()
	ino := f.Ino()
	v.Disk().Crash()
	v.Disk().Restart()
	v2, err := fs.Load("vol0", v.Disk())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Attach(v2, pages)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(m2, ino)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(committed))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, committed) {
		t.Fatalf("redo lost committed data: %q", got)
	}
	if f2.Size() != int64(len(committed)) {
		t.Fatalf("recovered size = %d (uncommitted extension leaked?)", f2.Size())
	}
	// Recovery is idempotent: a second scan finds an empty log.
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiOwnerVisibilityAndIsolation(t *testing.T) {
	_, _, f := newWAL(t)
	if _, err := f.WriteAt("a", []byte("AA"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt("b", []byte("BB"), 10); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Abort("b"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("AA")) {
		t.Fatalf("committed = %q", got)
	}
	if f.Size() != 2 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestLargeUpdateSplitsAcrossLogPages(t *testing.T) {
	v, _, f := newWAL(t)
	big := bytes.Repeat([]byte{0xEE}, testPageSize*2)
	if _, err := f.WriteAt("txn:big", big, 0); err != nil {
		t.Fatal(err)
	}
	before := v.Stats().Snapshot()
	if err := f.Commit("txn:big"); err != nil {
		t.Fatal(err)
	}
	d := v.Stats().Snapshot().Sub(before)
	if d.Get(stats.WALWrites) < 3 {
		t.Fatalf("big commit WALWrites = %d, want >= 3", d.Get(stats.WALWrites))
	}
	got := make([]byte, len(big))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("big record mismatch")
	}
}

func TestLogWrapsWithoutCheckpoint(t *testing.T) {
	st := stats.NewSet()
	d := simdisk.New("d0", 64, testPageSize, st)
	v, err := fs.Format("vol0", d, fs.Options{NumInodes: 4, LogPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := v.AllocInode()
	f, err := OpenFile(m, ino)
	if err != nil {
		t.Fatal(err)
	}
	var sawWrap bool
	for i := 0; i < 6; i++ {
		if _, err := f.WriteAt("t", bytes.Repeat([]byte{1}, 150), int64(i*150)); err != nil {
			t.Fatal(err)
		}
		if err := f.Commit("t"); err != nil {
			if errors.Is(err, ErrLogWrapped) {
				sawWrap = true
				break
			}
			t.Fatal(err)
		}
	}
	if !sawWrap {
		t.Fatal("log never reported wrap")
	}
	// Checkpoint resets the log and unblocks commits.
	if err := f.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt("t2", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit("t2"); err != nil {
		t.Fatal(err)
	}
}

func TestManagerValidation(t *testing.T) {
	st := stats.NewSet()
	d := simdisk.New("d0", 64, testPageSize, st)
	v, _ := fs.Format("vol0", d, fs.Options{NumInodes: 4, LogPages: 4})
	if _, err := NewManager(v, 1); err == nil {
		t.Fatal("NewManager accepted 1 page")
	}
	if _, err := Attach(v, []int{99}); err == nil {
		t.Fatal("Attach accepted 1 page")
	}
}

func TestCommitNoUpdates(t *testing.T) {
	_, _, f := newWAL(t)
	if err := f.Commit("ghost"); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("commit with no updates: %v", err)
	}
}
