// Package wal is the commit-logging baseline that section 6 of the paper
// compares shadow paging against.
//
// It implements a redo-only write-ahead log with a no-steal buffer policy
// over the same volume layer the shadow mechanism uses:
//
//   - uncommitted updates are buffered in memory and never reach the disk,
//     so abort costs zero I/O and no undo information is logged;
//   - commit serializes the owner's redo records into as few log pages as
//     possible and forces them, then applies the updates to the data pages
//     in place asynchronously (no-force): the in-place writes are only
//     charged when a checkpoint flushes them;
//   - recovery scans the log, redoes every committed owner's records in
//     place, and resets the log.
//
// The interesting comparison (experiment E6 in DESIGN.md) is I/O counts:
// logging pays ~bytes-modified/pagesize forced writes per commit plus
// amortized in-place writes, while shadow paging pays one forced write per
// modified page plus the inode write.  Small scattered records favor the
// log; page-sized or clustered records make shadow paging competitive,
// which is the paper's claim.
//
// The 1985-era systems cited by the paper (ENCOMPASS) logged undo as well;
// redo-only logging slightly flatters the baseline, which only strengthens
// any result where shadow paging holds up.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/fs"
	"repro/internal/simdisk"
	"repro/internal/stats"
)

// Owner identifies the holder of buffered updates, mirroring shadow.Owner.
type Owner string

// Errors returned by the WAL layer.
var (
	ErrLogWrapped  = errors.New("wal: log wrapped before checkpoint")
	ErrNoUpdates   = errors.New("wal: owner has no buffered updates")
	ErrRecordLarge = errors.New("wal: record larger than a log page")
)

const (
	walMagic uint32 = 0x57414C31 // "WAL1"
	ctlMagic uint32 = 0x5743544C // "WCTL"
	// Page header: magic(4) epoch(8) seq(8) count(2); trailer: crc(4).
	walPageHeader  = 22
	walPageTrailer = 4

	recUpdate byte = 1
	recCommit byte = 2
)

// Manager owns a circular region of log pages on one volume.  The first
// page of the region is a control page holding the current epoch; a
// checkpoint invalidates every log page by bumping the epoch with a
// single write, instead of rewriting the region.
type Manager struct {
	v  *fs.Volume
	st *stats.Set

	mu    sync.Mutex
	pages []int // pages[0] is the control page; the rest hold records
	head  int   // next slot in pages (>= 1)
	used  int   // slots holding live records
	seq   uint64
	epoch uint64
}

// NewManager allocates nPages data pages from the volume as the WAL
// region and returns the manager.  The page list must be re-pinned with
// Attach after a crash (a production system would record it in the
// superblock; the simulation keeps it with the caller).
func NewManager(v *fs.Volume, nPages int) (*Manager, error) {
	if nPages < 3 {
		return nil, fmt.Errorf("wal: need at least 3 log pages, got %d", nPages)
	}
	m := &Manager{v: v, st: v.Stats(), seq: 1, epoch: 1, head: 1}
	for i := 0; i < nPages; i++ {
		p, err := v.AllocPage()
		if err != nil {
			return nil, err
		}
		m.pages = append(m.pages, p)
	}
	if err := m.writeControl(); err != nil {
		return nil, err
	}
	return m, nil
}

// writeControl persists the current epoch to the control page: one I/O.
// Caller need not hold m.mu during construction; otherwise it must.
func (m *Manager) writeControl() error {
	buf := make([]byte, m.v.PageSize())
	binary.LittleEndian.PutUint32(buf[0:], ctlMagic)
	binary.LittleEndian.PutUint64(buf[4:], m.epoch)
	crc := crc32.ChecksumIEEE(buf[:12])
	binary.LittleEndian.PutUint32(buf[12:], crc)
	return m.v.Disk().WritePage(m.pages[0], buf, simdisk.IOWAL, true)
}

// readControl recovers the epoch from the control page.
func (m *Manager) readControl() error {
	buf, err := m.v.Disk().ReadPage(m.pages[0], simdisk.IOWAL)
	if err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != ctlMagic {
		return fmt.Errorf("wal: control page corrupt")
	}
	if crc32.ChecksumIEEE(buf[:12]) != binary.LittleEndian.Uint32(buf[12:]) {
		return fmt.Errorf("wal: control page checksum mismatch")
	}
	m.epoch = binary.LittleEndian.Uint64(buf[4:])
	return nil
}

// Attach adopts an existing WAL region after a volume reload, reserving
// its pages.  Call Recover afterwards.
func Attach(v *fs.Volume, pages []int) (*Manager, error) {
	if len(pages) < 3 {
		return nil, fmt.Errorf("wal: need at least 3 log pages, got %d", len(pages))
	}
	for _, p := range pages {
		if !v.PageAllocated(p) {
			if err := v.ReservePage(p); err != nil {
				return nil, err
			}
		}
	}
	m := &Manager{v: v, st: v.Stats(), pages: append([]int(nil), pages...), seq: 1, head: 1}
	if err := m.readControl(); err != nil {
		return nil, err
	}
	return m, nil
}

// Pages returns the log region's physical page numbers.
func (m *Manager) Pages() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.pages...)
}

// appendPage force-writes one formatted log page.
func (m *Manager) appendPage(body []byte) error {
	if m.used >= len(m.pages)-1 {
		return ErrLogWrapped
	}
	ps := m.v.PageSize()
	buf := make([]byte, ps)
	binary.LittleEndian.PutUint32(buf[0:], walMagic)
	binary.LittleEndian.PutUint64(buf[4:], m.epoch)
	binary.LittleEndian.PutUint64(buf[12:], m.seq)
	m.seq++
	if walPageHeader+len(body)+walPageTrailer > ps {
		return ErrRecordLarge
	}
	// count is the body length here; records are self-delimiting.
	binary.LittleEndian.PutUint16(buf[20:], uint16(len(body)))
	copy(buf[walPageHeader:], body)
	crc := crc32.ChecksumIEEE(buf[:walPageHeader+len(body)])
	binary.LittleEndian.PutUint32(buf[ps-walPageTrailer:], crc)

	phys := m.pages[m.head]
	m.head++
	if m.head >= len(m.pages) {
		m.head = 1
	}
	m.used++
	return m.v.Disk().WritePage(phys, buf, simdisk.IOWAL, true)
}

// bodyCapacity returns how many record bytes fit in one log page.
func (m *Manager) bodyCapacity() int {
	return m.v.PageSize() - walPageHeader - walPageTrailer
}

// resetLocked invalidates the log (checkpoint or recovery completion) by
// bumping the epoch: one control-page write.  Stale record pages are
// ignored by their epoch stamps on the next scan.  Caller holds m.mu.
func (m *Manager) resetLocked() error {
	m.epoch++
	if err := m.writeControl(); err != nil {
		return err
	}
	m.head = 1
	m.used = 0
	return nil
}

// update is one buffered redo record.
type update struct {
	ino  int
	off  int64
	data []byte
}

// encodedLen returns the serialized size of an update record.
func (u update) encodedLen(ownerLen int) int {
	// type(1) ownerLen(1) owner ino(4) off(8) len(2) data.
	return 1 + 1 + ownerLen + 4 + 8 + 2 + len(u.data)
}

// File is the WAL-side working state of one open file.
type File struct {
	mgr *Manager
	v   *fs.Volume
	st  *stats.Set

	mu      sync.Mutex
	ino     *fs.Inode
	size    int64
	pending map[Owner][]update
	// dirty tracks logical pages with committed-but-unflushed in-place
	// writes, plus whether the inode needs flushing; a checkpoint pays
	// for them.
	dirtyPages map[int]bool
	dirtyInode bool
	maxPtrs    int
	// pageBuf is the buffer pool: in-memory images of pages touched by
	// in-place application, so repeated updates to a hot page cost one
	// read, matching the LRU buffer pool both mechanisms enjoyed on the
	// paper's testbed.
	pageBuf map[int][]byte
}

// OpenFile loads a file's inode and returns its WAL working state.
func OpenFile(m *Manager, ino int) (*File, error) {
	node, err := m.v.ReadInode(ino)
	if err != nil {
		return nil, err
	}
	return &File{
		mgr:        m,
		v:          m.v,
		st:         m.st,
		ino:        node,
		size:       node.Size,
		pending:    make(map[Owner][]update),
		dirtyPages: make(map[int]bool),
		maxPtrs:    fs.MaxPointers(m.v.PageSize()),
		pageBuf:    make(map[int][]byte),
	}, nil
}

// bufferedPage returns the in-memory image of a logical page, loading it
// from disk (one charged read) on first touch.  Caller holds f.mu.
func (f *File) bufferedPage(logical, phys int) ([]byte, error) {
	if buf, ok := f.pageBuf[logical]; ok {
		return buf, nil
	}
	buf, err := f.v.ReadPage(phys)
	if err != nil {
		return nil, err
	}
	f.pageBuf[logical] = buf
	return buf, nil
}

// Ino returns the file's inode number.
func (f *File) Ino() int { return f.ino.Ino }

// Size returns the working size including uncommitted buffered extensions.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// WriteAt buffers an update for owner.  Nothing reaches the disk until
// commit.  Updates larger than a log page's capacity are split.
func (f *File) WriteAt(owner Owner, p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("wal: negative offset %d", off)
	}
	if end := off + int64(len(p)); end > int64(f.maxPtrs)*int64(f.v.PageSize()) {
		return 0, fmt.Errorf("wal: write beyond maximum file size")
	}
	maxChunk := f.mgr.bodyCapacity() - 64
	n := 0
	for n < len(p) {
		take := len(p) - n
		if take > maxChunk {
			take = maxChunk
		}
		f.pending[owner] = append(f.pending[owner], update{
			ino:  f.ino.Ino,
			off:  off + int64(n),
			data: append([]byte(nil), p[n:n+take]...),
		})
		n += take
	}
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	f.st.Add(stats.Instructions, 200+int64(len(p))/32)
	return n, nil
}

// ReadAt reads through the buffered updates: committed state overlaid
// with every owner's pending writes (matching the visibility the shadow
// layer provides).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("wal: negative offset %d", off)
	}
	if off >= f.size {
		return 0, nil
	}
	if max := f.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	ps := f.v.PageSize()
	n := 0
	for n < len(p) {
		logical := int((off + int64(n)) / int64(ps))
		pageOff := int((off + int64(n)) % int64(ps))
		take := ps - pageOff
		if take > len(p)-n {
			take = len(p) - n
		}
		var phys = -1
		if logical < len(f.ino.Pages) {
			phys = f.ino.Pages[logical]
		}
		if phys >= 0 {
			buf, err := f.bufferedPage(logical, phys)
			if err != nil {
				return n, err
			}
			copy(p[n:n+take], buf[pageOff:])
		} else {
			for i := n; i < n+take; i++ {
				p[i] = 0
			}
		}
		n += take
	}
	// Overlay pending updates in buffer order.
	var owners []Owner
	for o := range f.pending {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, o := range owners {
		for _, u := range f.pending[o] {
			lo, hi := u.off, u.off+int64(len(u.data))
			if lo < off+int64(len(p)) && off < hi {
				s := lo
				if s < off {
					s = off
				}
				e := hi
				if e > off+int64(len(p)) {
					e = off + int64(len(p))
				}
				copy(p[s-off:e-off], u.data[s-u.off:e-u.off])
			}
		}
	}
	return len(p), nil
}

// Commit forces owner's redo records to the log (the only synchronous
// I/O), then applies them in place asynchronously.  The in-place data and
// inode writes are deferred to the next Checkpoint.
func (f *File) Commit(owner Owner) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ups := f.pending[owner]
	if len(ups) == 0 {
		return fmt.Errorf("%w: %v", ErrNoUpdates, owner)
	}
	f.st.Add(stats.Instructions, costmodel.InstrCommitEnvelope/2)

	// Serialize records, packing as many per page as fit.
	f.mgr.mu.Lock()
	defer f.mgr.mu.Unlock()
	cap := f.mgr.bodyCapacity()
	var body []byte
	flushBody := func() error {
		if len(body) == 0 {
			return nil
		}
		err := f.mgr.appendPage(body)
		body = body[:0]
		return err
	}
	ownerB := []byte(owner)
	for _, u := range ups {
		f.st.Add(stats.Instructions, costmodel.InstrWALRecord)
		rec := make([]byte, 0, u.encodedLen(len(ownerB)))
		rec = append(rec, recUpdate, byte(len(ownerB)))
		rec = append(rec, ownerB...)
		var tmp [14]byte
		binary.LittleEndian.PutUint32(tmp[0:], uint32(u.ino))
		binary.LittleEndian.PutUint64(tmp[4:], uint64(u.off))
		binary.LittleEndian.PutUint16(tmp[12:], uint16(len(u.data)))
		rec = append(rec, tmp[:]...)
		rec = append(rec, u.data...)
		if len(rec) > cap {
			return ErrRecordLarge
		}
		if len(body)+len(rec) > cap {
			if err := flushBody(); err != nil {
				return err
			}
		}
		body = append(body, rec...)
	}
	// Commit record: forcing the page containing it is the commit point.
	crec := []byte{recCommit, byte(len(ownerB))}
	crec = append(crec, ownerB...)
	if len(body)+len(crec) > cap {
		if err := flushBody(); err != nil {
			return err
		}
	}
	body = append(body, crec...)
	if err := flushBody(); err != nil {
		return err
	}

	// Apply in place, asynchronously (no-force).
	if err := f.applyLocked(ups); err != nil {
		return err
	}
	delete(f.pending, owner)
	return nil
}

// applyLocked applies updates to data pages in the volatile layer and
// updates the cached inode; nothing is forced.  Caller holds f.mu (and
// for Commit, mgr.mu).
func (f *File) applyLocked(ups []update) error {
	ps := f.v.PageSize()
	for _, u := range ups {
		n := 0
		for n < len(u.data) {
			logical := int((u.off + int64(n)) / int64(ps))
			pageOff := int((u.off + int64(n)) % int64(ps))
			take := ps - pageOff
			if take > len(u.data)-n {
				take = len(u.data) - n
			}
			for len(f.ino.Pages) <= logical {
				f.ino.Pages = append(f.ino.Pages, -1)
				f.dirtyInode = true
			}
			if f.ino.Pages[logical] < 0 {
				p, err := f.v.AllocPage()
				if err != nil {
					return err
				}
				f.ino.Pages[logical] = p
				f.dirtyInode = true
			}
			phys := f.ino.Pages[logical]
			buf, err := f.bufferedPage(logical, phys)
			if err != nil {
				return err
			}
			copy(buf[pageOff:], u.data[n:n+take])
			if err := f.v.WritePage(phys, buf, false); err != nil {
				return err
			}
			f.dirtyPages[logical] = true
			n += take
		}
		if end := u.off + int64(len(u.data)); end > f.ino.Size {
			f.ino.Size = end
			f.dirtyInode = true
		}
	}
	return nil
}

// Abort drops owner's buffered updates.  No-steal means nothing reached
// the disk, so abort is free.
func (f *File) Abort(owner Owner) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.pending[owner]) == 0 {
		return fmt.Errorf("%w: %v", ErrNoUpdates, owner)
	}
	delete(f.pending, owner)
	// Recompute working size.
	f.size = f.ino.Size
	for _, ups := range f.pending {
		for _, u := range ups {
			if end := u.off + int64(len(u.data)); end > f.size {
				f.size = end
			}
		}
	}
	return nil
}

// Checkpoint forces every committed-but-unflushed in-place write and the
// inode, then resets the log.  This is where the no-force policy pays its
// deferred I/O; the benchmark charges it against the logging baseline,
// amortized over the transactions since the previous checkpoint.
func (f *File) Checkpoint() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var logicals []int
	for l := range f.dirtyPages {
		logicals = append(logicals, l)
	}
	sort.Ints(logicals)
	for _, l := range logicals {
		if phys := f.ino.Pages[l]; phys >= 0 {
			if err := f.v.FlushPage(phys); err != nil {
				return err
			}
		}
		delete(f.dirtyPages, l)
	}
	if f.dirtyInode {
		if err := f.v.WriteInode(f.ino); err != nil {
			return err
		}
		f.dirtyInode = false
	}
	f.mgr.mu.Lock()
	defer f.mgr.mu.Unlock()
	return f.mgr.resetLocked()
}

// Recover scans the log after a crash and redoes every committed owner's
// records in place, forcing the affected pages and inodes, then resets
// the log.  Uncommitted owners' records (no commit mark) are ignored.
func (m *Manager) Recover() error {
	m.mu.Lock()
	defer m.mu.Unlock()

	type scanPage struct {
		seq  uint64
		body []byte
	}
	var found []scanPage
	ps := m.v.PageSize()
	for _, phys := range m.pages[1:] {
		buf, err := m.v.Disk().ReadPage(phys, simdisk.IOWAL)
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(buf[0:]) != walMagic {
			continue
		}
		if binary.LittleEndian.Uint64(buf[4:]) != m.epoch {
			continue // stale: from before the last checkpoint
		}
		bodyLen := int(binary.LittleEndian.Uint16(buf[20:]))
		if walPageHeader+bodyLen+walPageTrailer > ps {
			continue
		}
		crc := binary.LittleEndian.Uint32(buf[ps-walPageTrailer:])
		if crc32.ChecksumIEEE(buf[:walPageHeader+bodyLen]) != crc {
			continue
		}
		found = append(found, scanPage{
			seq:  binary.LittleEndian.Uint64(buf[12:]),
			body: append([]byte(nil), buf[walPageHeader:walPageHeader+bodyLen]...),
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })

	pendings := make(map[Owner][]update)
	var committed []Owner
	for _, pg := range found {
		body := pg.body
		for len(body) > 0 {
			typ := body[0]
			oLen := int(body[1])
			if 2+oLen > len(body) {
				break
			}
			owner := Owner(body[2 : 2+oLen])
			body = body[2+oLen:]
			switch typ {
			case recUpdate:
				if len(body) < 14 {
					return fmt.Errorf("wal: truncated update record")
				}
				ino := int(binary.LittleEndian.Uint32(body[0:]))
				off := int64(binary.LittleEndian.Uint64(body[4:]))
				dLen := int(binary.LittleEndian.Uint16(body[12:]))
				body = body[14:]
				if dLen > len(body) {
					return fmt.Errorf("wal: truncated update data")
				}
				pendings[owner] = append(pendings[owner], update{
					ino: ino, off: off, data: append([]byte(nil), body[:dLen]...),
				})
				body = body[dLen:]
			case recCommit:
				committed = append(committed, owner)
			default:
				return fmt.Errorf("wal: unknown record type %d", typ)
			}
		}
	}

	// Redo committed owners in commit order.
	files := make(map[int]*File)
	for _, owner := range committed {
		for _, u := range pendings[owner] {
			file, ok := files[u.ino]
			if !ok {
				var err error
				file, err = OpenFile(m2(m), u.ino)
				if err != nil {
					return err
				}
				files[u.ino] = file
			}
			file.mu.Lock()
			err := file.applyLocked([]update{u})
			file.mu.Unlock()
			if err != nil {
				return err
			}
		}
		delete(pendings, owner)
	}
	// Force everything redone, then clear the log.
	for _, file := range files {
		file.mgr = m
		f := file
		f.mu.Lock()
		var logicals []int
		for l := range f.dirtyPages {
			logicals = append(logicals, l)
		}
		sort.Ints(logicals)
		for _, l := range logicals {
			if phys := f.ino.Pages[l]; phys >= 0 {
				if err := f.v.FlushPage(phys); err != nil {
					f.mu.Unlock()
					return err
				}
			}
		}
		if err := f.v.WriteInode(f.ino); err != nil {
			f.mu.Unlock()
			return err
		}
		f.mu.Unlock()
	}
	return m.resetLocked()
}

// m2 returns a manager view usable by OpenFile while m.mu is held (the
// nested file never touches the log during recovery).
func m2(m *Manager) *Manager {
	return &Manager{v: m.v, st: m.st, pages: m.pages, seq: m.seq, epoch: m.epoch, head: 1}
}
