package crashprobe

import (
	"fmt"

	"repro/internal/lockmgr"
	"repro/internal/tpc"
)

// checkRecovered audits the DESIGN.md section 5 recovery invariants on a
// fully recovered, drained cluster: nothing in doubt, no phase-two
// residue, logs well-formed and reclaimed, lock tables empty, and every
// volume's page allocator in agreement with its inodes.  These are the
// same invariants internal/chaos audits after a randomized run; here
// they run after every enumerated crash point.
func checkRecovered(h *harness) []string {
	var out []string
	out = append(out, checkResolution(h)...)
	out = append(out, checkLocks(h)...)
	out = append(out, checkAllocators(h)...)
	return out
}

// checkResolution: after recovery plus resolution no transaction may
// remain in doubt anywhere, and every volume log must be readable (no
// torn records) and fully reclaimed (section 4.4).
func checkResolution(h *harness) []string {
	var out []string
	for i := 1; i <= h.n; i++ {
		s := h.site(i)
		if n := s.InDoubtCount(); n != 0 {
			out = append(out, fmt.Sprintf("site %d: %d transactions still in doubt", i, n))
		}
		if coord, err := s.Coordinator(); err == nil {
			if n := coord.PendingCount(); n != 0 {
				out = append(out, fmt.Sprintf("site %d: coordinator has %d transactions pending phase two", i, n))
			}
		}
		for _, name := range s.Volumes() {
			vol := s.Volume(name)
			if _, err := vol.Log().Records(); err != nil {
				out = append(out, fmt.Sprintf("site %d %s: torn log record survived recovery: %v", i, name, err))
			}
			if recs, err := tpc.ReadPrepareRecords(vol); err != nil {
				out = append(out, fmt.Sprintf("site %d %s: reading prepare records: %v", i, name, err))
			} else if len(recs) != 0 {
				out = append(out, fmt.Sprintf("site %d %s: %d residual prepare records", i, name, len(recs)))
			}
			if keys := vol.Log().Keys(); len(keys) != 0 {
				out = append(out, fmt.Sprintf("site %d %s: log not reclaimed: %v", i, name, keys))
			}
		}
	}
	return out
}

// checkLocks: with every transaction resolved, the lock tables must be
// empty - retained locks exist only for live or in-doubt transactions
// (section 3.3) - and in any case conflict-free.
func checkLocks(h *harness) []string {
	var out []string
	for i := 1; i <= h.n; i++ {
		lm := h.site(i).Locks()
		for _, fid := range lm.Files() {
			fl := lm.Lookup(fid)
			if fl == nil {
				continue
			}
			// Lease entries are site grants, not transaction locks: they
			// hold no uncommitted state, legitimately survive commits
			// (that is their whole point), and by design overlap the
			// materialized locks of their own site's transactions - so
			// both scans skip them.
			all := fl.Entries()
			entries := all[:0:0]
			for _, en := range all {
				if !en.Leased {
					entries = append(entries, en)
				}
			}
			for _, en := range entries {
				out = append(out, fmt.Sprintf("site %d %s: residual %v lock %s [%d,%d) after recovery",
					i, fid, en.Mode, en.Holder.Group(), en.Off, en.Off+en.Len))
			}
			for a := 0; a < len(entries); a++ {
				for b := a + 1; b < len(entries); b++ {
					ea, eb := entries[a], entries[b]
					if ea.Holder.Group() == eb.Holder.Group() {
						continue
					}
					if ea.Mode != lockmgr.ModeExclusive && eb.Mode != lockmgr.ModeExclusive {
						continue
					}
					if ea.Off < eb.Off+eb.Len && eb.Off < ea.Off+ea.Len {
						out = append(out, fmt.Sprintf("site %d %s: conflicting grants %s %v [%d,%d) vs %s %v [%d,%d)",
							i, fid,
							ea.Holder.Group(), ea.Mode, ea.Off, ea.Off+ea.Len,
							eb.Holder.Group(), eb.Mode, eb.Off, eb.Off+eb.Len))
					}
				}
			}
		}
	}
	return out
}

// checkAllocators: each volume's allocator must agree with its inodes -
// every referenced page allocated and in range, no page referenced
// twice, no allocated page unreferenced (a crash point that leaks pages
// strands them forever).
func checkAllocators(h *harness) []string {
	var out []string
	for i := 1; i <= h.n; i++ {
		s := h.site(i)
		for _, name := range s.Volumes() {
			vol := s.Volume(name)
			geo := vol.Geometry()
			ref := map[int]int{}
			for _, ino := range vol.Inodes() {
				node, err := vol.ReadInode(ino)
				if err != nil {
					out = append(out, fmt.Sprintf("%s ino %d: unreadable after recovery: %v", name, ino, err))
					continue
				}
				pages := node.Pages
				if node.Indirect >= 0 {
					pages = append(append([]int{}, pages...), node.Indirect)
				}
				for _, pg := range pages {
					if pg < 0 {
						continue // hole
					}
					if pg < geo.DataStart || pg >= geo.NumPages {
						out = append(out, fmt.Sprintf("%s ino %d: page %d outside data region [%d,%d)",
							name, ino, pg, geo.DataStart, geo.NumPages))
						continue
					}
					if prev, dup := ref[pg]; dup {
						out = append(out, fmt.Sprintf("%s: page %d referenced by both ino %d and ino %d",
							name, pg, prev, ino))
					}
					ref[pg] = ino
					if !vol.PageAllocated(pg) {
						out = append(out, fmt.Sprintf("%s ino %d: references free page %d", name, ino, pg))
					}
				}
			}
			for pg := geo.DataStart; pg < geo.NumPages; pg++ {
				if _, ok := ref[pg]; !ok && vol.PageAllocated(pg) {
					out = append(out, fmt.Sprintf("%s: page %d allocated but referenced by no inode", name, pg))
				}
			}
		}
	}
	return out
}
