// Package crashprobe is a deterministic, exhaustive crash-schedule
// explorer for the commit machinery: for each workload it first runs a
// counting pass to learn N, the number of stable page writes each disk
// performs, then replays the workload N times, arming
// simdisk.CrashAfterWrites(i) for every index i (optionally restricted
// to one IOKind class).  After each crash it drives full site recovery
// (Site.Restart, ResolveInDoubt, coordinator phase-two retries) and
// mechanically checks the DESIGN.md section 5 invariants: per-file
// all-or-nothing, durability of confirmed commits, no torn log records,
// and consistent resolution of in-doubt transactions across sites.
//
// Unlike the randomized schedules of internal/chaos, a probe sweep is a
// complete enumeration: every instant at which a crash could separate
// one stable write from the next is visited exactly once, so a clean
// matrix is a proof over the workload's whole crash surface, not a
// sample of it.  Everything is deterministic - same options, same
// result, byte for byte.
package crashprobe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simdisk"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Options selects and bounds one probe sweep.
type Options struct {
	// Workload is one of "single", "diff", "tpc", "migrate",
	// "readonly", "onephase", "lease", "ownermove", or "all"/"" for
	// every workload.
	Workload string
	// Kind optionally restricts the sweep to one I/O class ("data",
	// "inode", "coordlog", "preparelog"): only stable writes of that
	// kind are counted and crashed on.  Empty sweeps every write.
	Kind string
	// MaxPointsPerDisk bounds the sweep per disk: when a disk exposes
	// more crash points than this, the indices are stride-sampled
	// (first and last always included).  Zero means exhaustive.
	MaxPointsPerDisk int
	// Forensics attaches the causal trace tail of the touched files to
	// each violation.
	Forensics bool
	// Logf reports per-point progress (nil = silent).
	Logf func(format string, args ...any)
}

// PointResult is the verdict of one crash point: the workload replayed
// with the named disk armed to fail its (Index+1)-th stable write.
// Index -1 is the counting run (no crash armed).
type PointResult struct {
	Site   int
	Volume string
	Index  int
	Kind   string `json:",omitempty"`
	// Fired reports whether the armed fault actually tripped.
	Fired bool
	// Confirmed reports whether the commit was confirmed to the client
	// (EndTrans returned nil).  Confirmed implies the committed state
	// must survive recovery.
	Confirmed bool
	// State summarizes the committed content the audit read back:
	// "pre", "post", or a workload-specific anomaly tag.
	State      string
	Violations []string `json:",omitempty"`
	Forensics  []string `json:",omitempty"`
}

// DiskSweep is the exhaustive (or stride-bounded) sweep of one disk.
type DiskSweep struct {
	Site   int
	Volume string
	// Writes is N, the stable write count the counting run learned.
	Writes int
	// Swept is how many of those indices were replayed (== Writes
	// unless MaxPointsPerDisk bounded the sweep).
	Swept  int
	Points []PointResult
}

// WorkloadResult is one workload's full crash matrix.
type WorkloadResult struct {
	Workload string
	Baseline PointResult
	Disks    []DiskSweep
}

// Result is a whole probe run.
type Result struct {
	Kind      string `json:",omitempty"`
	Workloads []WorkloadResult
}

// OK reports whether every point of every matrix passed.
func (r *Result) OK() bool { return len(r.Violations()) == 0 }

// Points returns the total number of crash points replayed.
func (r *Result) Points() int {
	n := 0
	for _, w := range r.Workloads {
		for _, d := range w.Disks {
			n += len(d.Points)
		}
	}
	return n
}

// Violations flattens every failing point's findings, each prefixed
// with its workload and crash point.
func (r *Result) Violations() []string {
	var out []string
	for _, w := range r.Workloads {
		for _, v := range w.Baseline.Violations {
			out = append(out, fmt.Sprintf("%s baseline: %s", w.Workload, v))
		}
		for _, d := range w.Disks {
			for _, pt := range d.Points {
				for _, v := range pt.Violations {
					out = append(out, fmt.Sprintf("%s %s@%d: %s", w.Workload, pt.Volume, pt.Index, v))
				}
			}
		}
	}
	return out
}

// JSON renders the result deterministically: same options, same bytes.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Report renders the human-readable matrix summary.
func (r *Result) Report() string {
	var b strings.Builder
	for _, w := range r.Workloads {
		total, fired, bad := 0, 0, 0
		for _, d := range r.disksOf(w.Workload) {
			for _, pt := range d.Points {
				total++
				if pt.Fired {
					fired++
				}
				if len(pt.Violations) > 0 {
					bad++
				}
			}
		}
		fmt.Fprintf(&b, "workload %-8s", w.Workload)
		for _, d := range w.Disks {
			fmt.Fprintf(&b, "  %s:%d writes (%d swept)", d.Volume, d.Writes, d.Swept)
		}
		fmt.Fprintf(&b, "  points=%d fired=%d violations=%d\n", total, fired, bad)
		if len(w.Baseline.Violations) > 0 {
			fmt.Fprintf(&b, "  FAIL baseline (state=%s)\n", w.Baseline.State)
			for _, v := range w.Baseline.Violations {
				fmt.Fprintf(&b, "    - %s\n", v)
			}
		}
		for _, d := range w.Disks {
			for _, pt := range d.Points {
				if len(pt.Violations) == 0 {
					continue
				}
				fmt.Fprintf(&b, "  FAIL %s@%d (fired=%v confirmed=%v state=%s)\n",
					pt.Volume, pt.Index, pt.Fired, pt.Confirmed, pt.State)
				for _, v := range pt.Violations {
					fmt.Fprintf(&b, "    - %s\n", v)
				}
				for _, f := range pt.Forensics {
					fmt.Fprintf(&b, "      %s\n", f)
				}
			}
		}
	}
	if r.OK() {
		b.WriteString("verdict: PASS\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (%d violations)\n", len(r.Violations()))
	}
	return b.String()
}

func (r *Result) disksOf(workload string) []DiskSweep {
	for _, w := range r.Workloads {
		if w.Workload == workload {
			return w.Disks
		}
	}
	return nil
}

// workload is one probed scenario: a deterministic, serial transaction
// whose crash surface the sweep enumerates.
type workload interface {
	name() string
	// sites is the cluster size; site i hosts volume "v<i>".
	sites() int
	// paths lists the files the content audit reads (and the objects
	// forensics are collected for).
	paths() []string
	// setup commits the baseline state.  Stable writes here happen
	// before the fault is armed and are not crash points.
	setup(h *harness) error
	// run executes the probed transaction; confirmed reports whether
	// the commit was confirmed to the client.
	run(h *harness) (confirmed bool)
	// check audits the committed content after recovery.
	check(h *harness, confirmed bool) (state string, violations []string)
	// cleanup retires auxiliary processes (best effort; after a crash
	// the site restart has already reaped them).
	cleanup(h *harness)
}

func workloads() []workload {
	return []workload{&singleWL{}, &diffWL{}, &tpcWL{}, &migrateWL{}, &readonlyWL{}, &onephaseWL{}, &leaseWL{}, &ownermoveWL{}}
}

func selectWorkloads(name string) ([]workload, error) {
	all := workloads()
	if name == "" || name == "all" {
		return all, nil
	}
	for _, w := range all {
		if w.name() == name {
			return []workload{w}, nil
		}
	}
	var names []string
	for _, w := range all {
		names = append(names, w.name())
	}
	return nil, fmt.Errorf("crashprobe: unknown workload %q (want %s or all)",
		name, strings.Join(names, ", "))
}

// parseKind maps an Options.Kind name to its IOKind.
func parseKind(name string) (simdisk.IOKind, bool, error) {
	if name == "" {
		return 0, false, nil
	}
	for _, k := range []simdisk.IOKind{
		simdisk.IOData, simdisk.IOInode, simdisk.IOCoordLog,
		simdisk.IOPrepareLog, simdisk.IOWAL, simdisk.IOMeta,
	} {
		if k.String() == name {
			return k, true, nil
		}
	}
	return 0, false, fmt.Errorf("crashprobe: unknown I/O kind %q", name)
}

// harness is one replay's cluster: site i in 1..n hosts volume "v<i>".
type harness struct {
	sys       *core.System
	collector *trace.Collector
	n         int
}

func volName(i int) string { return fmt.Sprintf("v%d", i) }

// fastPather is implemented by workloads that probe the commit fast
// paths (DESIGN.md section 10); the harness then enables them.
type fastPather interface {
	fastPaths() bool
}

// leaser is implemented by workloads that probe sticky lock leases
// (DESIGN.md section 13); the harness then enables them.
type leaser interface {
	lockLeases() bool
}

// placer is implemented by workloads that probe locality-adaptive
// placement (DESIGN.md section 14); the harness then enables it with
// aggressive knobs so an ownership move fires after two remote
// accesses, deterministically inside the probed commit.
type placer interface {
	adaptivePlacement() bool
}

// diskRef names one disk of the sweep: the volume at a site.  Most
// workloads sweep each site's own mounted volume; a sweeper overrides
// the list (the ownermove workload adds the hosted volume an adopted
// file lands on at its new home site).
type diskRef struct {
	Site   int
	Volume string
}

// sweeper is implemented by workloads whose crash surface spans disks
// beyond the one-mounted-volume-per-site default.  Every listed volume
// must exist once setup returns.
type sweeper interface {
	sweepDisks() []diskRef
}

// sweepDisksOf returns the workload's disk list.
func sweepDisksOf(w workload) []diskRef {
	if sw, ok := w.(sweeper); ok {
		return sw.sweepDisks()
	}
	refs := make([]diskRef, 0, w.sites())
	for i := 1; i <= w.sites(); i++ {
		refs = append(refs, diskRef{Site: i, Volume: volName(i)})
	}
	return refs
}

func newHarness(w workload) (*harness, error) {
	col := trace.NewCollector(0)
	cfg := cluster.Config{
		// Synchronous phase two and no retry timer: the only actors are
		// the workload's own calls, so the i-th stable write is the
		// same write on every replay.
		SyncPhase2:      true,
		LockWaitTimeout: 2 * time.Second,
		Trace:           col,
		Net:             simnet.Config{Seed: 7},
	}
	if fp, ok := w.(fastPather); ok && fp.fastPaths() {
		cfg.FastPaths = true
	}
	if lp, ok := w.(leaser); ok && lp.lockLeases() {
		cfg.LockLeases = true
	}
	if pl, ok := w.(placer); ok && pl.adaptivePlacement() {
		cfg.AdaptivePlacement = true
		cfg.PlacementMinAccesses = 2
		cfg.PlacementCooldown = 2
	}
	sys := core.NewSystem(cfg)
	h := &harness{sys: sys, collector: col, n: w.sites()}
	for i := 1; i <= h.n; i++ {
		id := simnet.SiteID(i)
		sys.AddSite(id)
		if err := sys.AddVolume(id, volName(i)); err != nil {
			sys.Cluster().Shutdown()
			return nil, err
		}
	}
	return h, nil
}

func (h *harness) close() { h.sys.Cluster().Shutdown() }
func (h *harness) site(i int) *cluster.Site {
	return h.sys.Cluster().Site(simnet.SiteID(i))
}
func (h *harness) disk(i int) *simdisk.Disk {
	return h.site(i).Volume(volName(i)).Disk()
}

// diskAt resolves a sweep disk ref; the volume may be a hosted one
// (created by an ownership-move adoption), as long as setup created it.
func (h *harness) diskAt(ref diskRef) *simdisk.Disk {
	vol := h.site(ref.Site).Volume(ref.Volume)
	if vol == nil {
		return nil
	}
	return vol.Disk()
}

// stableWrites reads the probe's write counter for site i's disk.
func (h *harness) stableWrites(i int, kind simdisk.IOKind, useKind bool) int64 {
	if useKind {
		return h.disk(i).StableWritesOfKind(kind)
	}
	return h.disk(i).StableWrites()
}

// stableWritesAt is stableWrites for an arbitrary sweep disk ref.
func (h *harness) stableWritesAt(ref diskRef, kind simdisk.IOKind, useKind bool) int64 {
	d := h.diskAt(ref)
	if d == nil {
		return 0
	}
	if useKind {
		return d.StableWritesOfKind(kind)
	}
	return d.StableWrites()
}

// recover crash-restarts every site whose disk tripped, then drains
// resolution: in-doubt participants resolve against coordinator records,
// coordinators re-drive phase two, and the asynchronous topology-abort
// watcher finishes releasing locks.  The deadline only bounds a buggy
// system; a correct one drains in a few iterations.
func (h *harness) recover() error {
	for i := 1; i <= h.n; i++ {
		s := h.site(i)
		crashed := h.disk(i).Crashed()
		// A site is also down when any hosted volume's disk tripped
		// (ownership-move adoptions land on hosted volumes).
		for _, name := range s.Volumes() {
			if vol := s.Volume(name); vol != nil && vol.Disk().Crashed() {
				crashed = true
			}
		}
		if crashed && s.Up() {
			s.Crash()
		}
	}
	for i := 1; i <= h.n; i++ {
		if s := h.site(i); !s.Up() {
			if err := s.Restart(); err != nil {
				return fmt.Errorf("crashprobe: restart site %d: %w", i, err)
			}
		}
	}
	return nil
}

func (h *harness) drain() {
	deadline := time.Now().Add(5 * time.Second)
	for {
		pending := 0
		for i := 1; i <= h.n; i++ {
			s := h.site(i)
			if _, err := s.ResolveInDoubt(); err != nil {
				pending++
			}
			pending += s.InDoubtCount()
			if coord, err := s.Coordinator(); err == nil {
				coord.RetryPending()
				pending += coord.PendingCount()
			}
			lm := s.Locks()
			for _, fid := range lm.Files() {
				if fl := lm.Lookup(fid); fl != nil {
					// Lease entries are not pending work: a lease waits
					// for a conflicting request or its TTL, not for any
					// transaction to finish.
					for _, en := range fl.Entries() {
						if !en.Leased {
							pending++
						}
					}
				}
			}
		}
		if pending == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// forensics renders the trace tail touching object, indented for the
// violation report.
func (h *harness) forensics(object string) []string {
	const depth = 20
	evs := h.collector.LastTouching(object, depth)
	if len(evs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	trace.Timeline(&buf, evs) //nolint:errcheck // bytes.Buffer cannot fail
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	out := make([]string, 0, len(lines)+1)
	out = append(out, fmt.Sprintf("forensics: last %d events touching %s:", len(evs), object))
	for _, l := range lines {
		out = append(out, "  "+l)
	}
	return out
}

// Run executes the sweep the options select.
func Run(opts Options) (*Result, error) {
	list, err := selectWorkloads(opts.Workload)
	if err != nil {
		return nil, err
	}
	if _, _, err := parseKind(opts.Kind); err != nil {
		return nil, err
	}
	res := &Result{Kind: opts.Kind}
	for _, w := range list {
		wr, err := sweepWorkload(w, opts)
		if err != nil {
			return nil, err
		}
		res.Workloads = append(res.Workloads, *wr)
	}
	return res, nil
}

func sweepWorkload(w workload, opts Options) (*WorkloadResult, error) {
	kind, useKind, _ := parseKind(opts.Kind)
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Counting run: learn each disk's stable write count, and audit the
	// crash-free path while we are at it.
	h, err := newHarness(w)
	if err != nil {
		return nil, err
	}
	if err := w.setup(h); err != nil {
		h.close()
		return nil, fmt.Errorf("crashprobe: %s setup: %w", w.name(), err)
	}
	refs := sweepDisksOf(w)
	base := make([]int64, len(refs))
	for i, ref := range refs {
		base[i] = h.stableWritesAt(ref, kind, useKind)
	}
	confirmed := w.run(h)
	counts := make([]int, len(refs))
	for i, ref := range refs {
		counts[i] = int(h.stableWritesAt(ref, kind, useKind) - base[i])
	}
	w.cleanup(h)
	h.drain()
	wr := &WorkloadResult{Workload: w.name()}
	wr.Baseline = PointResult{Index: -1, Kind: opts.Kind, Confirmed: confirmed}
	wr.Baseline.State, wr.Baseline.Violations = audit(h, w, confirmed)
	if len(wr.Baseline.Violations) > 0 && opts.Forensics {
		for _, path := range w.paths() {
			wr.Baseline.Forensics = append(wr.Baseline.Forensics, h.forensics(path)...)
		}
	}
	if !confirmed {
		wr.Baseline.Violations = append(wr.Baseline.Violations,
			"counting run did not confirm its commit: the workload is broken without any fault")
	}
	h.close()
	logf("%s: counting run confirmed=%v state=%s", w.name(), confirmed, wr.Baseline.State)

	// Replay matrix: one disk armed per replay, every index visited.
	for i, ref := range refs {
		ds := DiskSweep{Site: ref.Site, Volume: ref.Volume, Writes: counts[i]}
		indices := sampleIndices(counts[i], opts.MaxPointsPerDisk)
		ds.Swept = len(indices)
		if ds.Swept < ds.Writes {
			logf("%s %s: bounding sweep to %d of %d crash points (stride sample)",
				w.name(), ds.Volume, ds.Swept, ds.Writes)
		}
		for _, idx := range indices {
			pt, err := probePoint(w, ref, idx, kind, useKind, opts)
			if err != nil {
				return nil, err
			}
			ds.Points = append(ds.Points, pt)
			if len(pt.Violations) > 0 {
				logf("%s %s@%d: FAIL (%d violations)", w.name(), ds.Volume, idx, len(pt.Violations))
			}
		}
		logf("%s %s: swept %d points", w.name(), ds.Volume, ds.Swept)
		wr.Disks = append(wr.Disks, ds)
	}
	return wr, nil
}

// probePoint replays the workload once with the ref'd disk armed to
// fail its (idx+1)-th stable write, then recovers and audits.
func probePoint(w workload, ref diskRef, idx int, kind simdisk.IOKind, useKind bool, opts Options) (PointResult, error) {
	pt := PointResult{Site: ref.Site, Volume: ref.Volume, Index: idx, Kind: opts.Kind}
	h, err := newHarness(w)
	if err != nil {
		return pt, err
	}
	defer h.close()
	if err := w.setup(h); err != nil {
		return pt, fmt.Errorf("crashprobe: %s setup: %w", w.name(), err)
	}
	disk := h.diskAt(ref)
	if disk == nil {
		return pt, fmt.Errorf("crashprobe: %s: sweep disk %s@%d does not exist after setup", w.name(), ref.Volume, ref.Site)
	}
	if useKind {
		disk.CrashAfterWritesOfKind(kind, idx)
	} else {
		disk.CrashAfterWrites(idx)
	}
	pt.Confirmed = w.run(h)
	pt.Fired = disk.Crashed()
	if !pt.Fired {
		// The budget survived the run (the error path at an earlier
		// point skipped this write): disarm so the audit's own I/O
		// cannot trip it.
		disk.CrashAfterWrites(-1)
	}
	if err := h.recover(); err != nil {
		return pt, err
	}
	w.cleanup(h)
	h.drain()
	pt.State, pt.Violations = audit(h, w, pt.Confirmed)
	if len(pt.Violations) > 0 && opts.Forensics {
		for _, path := range w.paths() {
			pt.Forensics = append(pt.Forensics, h.forensics(path)...)
		}
	}
	return pt, nil
}

// audit runs the generic recovery invariants followed by the workload's
// content check (in that order: the lock-table scan must precede content
// reads, which themselves take and release locks).
func audit(h *harness, w workload, confirmed bool) (string, []string) {
	violations := checkRecovered(h)
	state, cv := w.check(h, confirmed)
	return state, append(violations, cv...)
}

// sampleIndices returns the crash indices to replay for a disk exposing
// n stable writes: all of them, or max stride-sampled indices always
// including the first and last.
func sampleIndices(n, max int) []int {
	if n <= 0 {
		return nil
	}
	if max <= 0 || n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if max == 1 {
		return []int{n - 1}
	}
	seen := make(map[int]bool)
	var out []int
	for k := 0; k < max; k++ {
		idx := k * (n - 1) / (max - 1)
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}
