package crashprobe

import (
	"bytes"
	"testing"
)

// requireClean fails the test with the full report when any crash point
// of the matrix found a violation.
func requireClean(t *testing.T, res *Result) {
	t.Helper()
	if res.Points() == 0 {
		t.Fatal("matrix swept zero crash points")
	}
	if !res.OK() {
		t.Fatalf("crash matrix failed:\n%s", res.Report())
	}
}

// fireCount returns how many points actually tripped their armed fault.
func fireCount(res *Result) int {
	n := 0
	for _, w := range res.Workloads {
		for _, d := range w.Disks {
			for _, pt := range d.Points {
				if pt.Fired {
					n++
				}
			}
		}
	}
	return n
}

func TestSingleFileMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "single"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if fireCount(res) != res.Points() {
		t.Fatalf("only %d of %d armed crash points fired: the replay is not deterministic",
			fireCount(res), res.Points())
	}
	if !res.Workloads[0].Baseline.Confirmed {
		t.Fatal("counting run did not confirm its commit")
	}
}

func TestPageDifferencingMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "diff"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
}

func TestTwoPhaseCommitMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full 3-site matrix is long; run without -short")
	}
	res, err := Run(Options{Workload: "tpc"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
}

func TestTwoPhaseCommitMatrixBounded(t *testing.T) {
	res, err := Run(Options{Workload: "tpc", MaxPointsPerDisk: 6})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	for _, d := range res.Workloads[0].Disks {
		if d.Swept > 6 {
			t.Fatalf("disk %s swept %d points, bound was 6", d.Volume, d.Swept)
		}
		if d.Writes > 6 && d.Swept < 2 {
			t.Fatalf("disk %s: stride sample too small (%d of %d)", d.Volume, d.Swept, d.Writes)
		}
	}
}

func TestMigrationCommitMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2-site matrix is long; run without -short")
	}
	res, err := Run(Options{Workload: "migrate"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
}

// TestReadOnlyVoteMatrix sweeps the fast-path 2PC whose remote
// participant only read.  The sweep doubles as the proof of the fast
// path itself: the read-only site must expose zero crash points,
// because a VoteReadOnly participant performs no stable write at all.
func TestReadOnlyVoteMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "readonly"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	for _, d := range res.Workloads[0].Disks {
		if d.Volume == "v2" && d.Writes != 0 {
			t.Fatalf("read-only participant performed %d stable writes, want 0", d.Writes)
		}
	}
	if fireCount(res) != res.Points() {
		t.Fatalf("only %d of %d armed crash points fired", fireCount(res), res.Points())
	}
}

// TestOnePhaseCommitMatrix sweeps the single-participant one-phase
// commit: the commit point is the participant's own prepare-record
// force, and every crash on either side of it must self-resolve from
// the surviving record count (the coordinator, which never logged,
// has nothing to answer).  The coordinator site must expose zero
// crash points - its log is skipped entirely.
func TestOnePhaseCommitMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "onephase"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	for _, d := range res.Workloads[0].Disks {
		if d.Volume == "v2" && d.Writes != 0 {
			t.Fatalf("one-phase coordinator performed %d stable writes, want 0", d.Writes)
		}
	}
}

// TestLeaseMatrix sweeps the sticky-lease workload: a commit through
// the lease-hit path (no lock message; the storage site materializes
// the descriptor from its retained lease) followed by a conflicting
// local commit that forces the callback revoke.  Every crash point
// must recover to one of the three serial images, confirmed commits
// must survive, and no lease entry may read as a residual lock.
func TestLeaseMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "lease"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if fireCount(res) == 0 {
		t.Fatal("no lease crash point fired")
	}
}

// TestPhase2AckDurabilityMatrix pins the coordinator's phase-two
// ordering: crashing a participant on any prepare-log write (the class
// that persists and clears its prepared state) must leave recovery able
// to re-drive phase two until both sites agree.  Before finishTxn made
// prepare-record deletion durable ahead of the phase-two ack, points in
// this sweep left one site committed and the other replaying stale
// intentions over it.
func TestPhase2AckDurabilityMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "tpc", Kind: "preparelog"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if fireCount(res) == 0 {
		t.Fatal("no preparelog crash point fired; the filter is not exercising phase two")
	}
}

// TestCoordinatorLogMatrix crashes on every coordinator-log write: the
// commit-point flip and the post-completion record deletion.  Presumed
// abort must keep both participants consistent on either side.
func TestCoordinatorLogMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "tpc", Kind: "coordlog"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
}

func TestJSONDeterministic(t *testing.T) {
	opts := Options{Workload: "single"}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same options produced different JSON:\n--- first\n%s\n--- second\n%s", ja, jb)
	}
}

func TestSampleIndices(t *testing.T) {
	cases := []struct {
		n, max int
		want   []int
	}{
		{0, 0, nil},
		{3, 0, []int{0, 1, 2}},
		{3, 5, []int{0, 1, 2}},
		{10, 1, []int{9}},
		{10, 3, []int{0, 4, 9}},
	}
	for _, c := range cases {
		got := sampleIndices(c.n, c.max)
		if len(got) != len(c.want) {
			t.Fatalf("sampleIndices(%d,%d) = %v, want %v", c.n, c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("sampleIndices(%d,%d) = %v, want %v", c.n, c.max, got, c.want)
			}
		}
	}
	// Bounded samples always include the first and last index.
	got := sampleIndices(100, 7)
	if got[0] != 0 || got[len(got)-1] != 99 {
		t.Fatalf("stride sample %v does not span [0,99]", got)
	}
}

func TestUnknownWorkloadAndKind(t *testing.T) {
	if _, err := Run(Options{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Options{Workload: "single", Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestOwnerMoveMatrix sweeps the adaptive-placement workload: the
// probed commit's post-commit sweep migrates the hot file's primary
// copy inline, so crash points land inside the ownership move (source
// reclaim, hosted-volume adoption, the namespace repoint between them)
// while a second commit from the old home races the moved file.  Every
// point must heal to exactly one primary copy with no committed data
// lost.
func TestOwnerMoveMatrix(t *testing.T) {
	res, err := Run(Options{Workload: "ownermove"})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if fireCount(res) == 0 {
		t.Fatal("no ownermove crash point fired")
	}
	// The sweep must include the hosted volume at the move target -
	// that is where the adoption's stable writes land.
	found := false
	for _, d := range res.Workloads[0].Disks {
		if d.Site == 2 && d.Volume == "v1" && d.Writes > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("sweep did not cover the hosted v1 volume at site 2")
	}
}
