package crashprobe

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/simnet"
)

// The six workloads cover the commit shapes of the paper plus the
// DESIGN.md section 10 fast paths:
//
//	single   - single-file commit on one site (Figure 4(a) direct path:
//	           shadow pages flushed, one inode write is the commit point)
//	diff     - commit of a page shared with a non-transaction co-owner's
//	           uncommitted bytes (Figure 4(b) page differencing: the
//	           committed image is merged onto the stable previous version)
//	tpc      - two files on two storage sites, committed from a third:
//	           full two-phase commit with a coordinator log
//	migrate  - a transaction whose member process forks to a second site
//	           and whose top-level process migrates there before EndTrans,
//	           so the coordinator is not the origin site
//	readonly - two-phase commit with fast paths on where the remote
//	           participant only read: it answers VoteReadOnly, forces
//	           nothing, and drops out of phase two
//	onephase - single remote participant site with fast paths on: the
//	           combined prepare-and-commit message puts the commit point
//	           in the participant's own prepare-record force
//	lease    - sticky lock leases on: the probed transaction commits a
//	           remote file through the lease-hit path (no lock message;
//	           the storage site materializes the descriptor), then a
//	           conflicting transaction at the storage site forces the
//	           callback revoke - crash points land inside the lease
//	           machinery and must never tear either commit
//
//	ownermove - locality-adaptive placement on with aggressive knobs: the
//	           probed commit's post-commit sweep migrates the hot file's
//	           primary copy to its dominant accessor, inline, so crash
//	           points land inside the ownership move itself (source
//	           reclaim, target adoption, the namespace repoint between
//	           them) while a second commit races the moved file
//
// Each run is serial and deterministic: every replay performs the same
// stable writes in the same order until the armed crash fires.  (The
// lease workload's revoke callback is a network message, not a stable
// write, so it adds no crash points of its own.)

// Baseline and target images.  Sizes straddle page boundaries on
// purpose: pre is a page and a half, post two pages and change, so
// commits exercise partial-page tails and file extension.
var (
	preImage  = bytes.Repeat([]byte{'A'}, 1500)
	postImage = bytes.Repeat([]byte{'B'}, 2600)
)

// commitFile creates path and commits image into it.
func commitFile(p *core.Process, path string, image []byte) error {
	f, err := p.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck
	if _, err := p.BeginTrans(); err != nil {
		return err
	}
	if _, err := f.WriteAt(image, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return err
	}
	return p.EndTrans()
}

// readCommittedPath returns a file's committed contents via a fresh
// non-transaction read.
func readCommittedPath(h *harness, path string) ([]byte, error) {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return nil, err
	}
	f, err := p.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck
	cs, err := f.CommittedSize()
	if err != nil {
		return nil, err
	}
	if cs == 0 {
		return nil, nil
	}
	buf := make([]byte, cs)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// classify names a committed image against the expected before/after
// states; anything else is an atomicity violation.
func classify(got, pre, post []byte) string {
	switch {
	case bytes.Equal(got, pre):
		return "pre"
	case bytes.Equal(got, post):
		return "post"
	default:
		return fmt.Sprintf("torn(len=%d)", len(got))
	}
}

// checkAllOrNothing audits one file against pre/post and the confirmed
// flag; the returned state is "pre" or "post" when the file is intact.
func checkAllOrNothing(h *harness, path string, pre, post []byte, confirmed bool) (string, []string) {
	got, err := readCommittedPath(h, path)
	if err != nil {
		return "unreadable", []string{fmt.Sprintf("%s: committed read failed after recovery: %v", path, err)}
	}
	state := classify(got, pre, post)
	var violations []string
	if state != "pre" && state != "post" {
		violations = append(violations,
			fmt.Sprintf("%s: committed content is neither the old nor the new image (%s)", path, state))
	}
	if confirmed && state == "pre" {
		violations = append(violations,
			fmt.Sprintf("%s: commit was confirmed to the client but recovery reverted it", path))
	}
	return state, violations
}

// ---------------------------------------------------------------------
// single: single-file commit on one site.

type singleWL struct{}

func (*singleWL) name() string    { return "single" }
func (*singleWL) sites() int      { return 1 }
func (*singleWL) paths() []string { return []string{"v1/f"} }

func (*singleWL) setup(h *harness) error {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return err
	}
	return commitFile(p, "v1/f", preImage)
}

func (*singleWL) run(h *harness) bool {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return false
	}
	f, err := p.Open("v1/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	if _, err := f.WriteAt(postImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck // crash-path rollback is best effort
		return false
	}
	return p.EndTrans() == nil
}

func (*singleWL) check(h *harness, confirmed bool) (string, []string) {
	return checkAllOrNothing(h, "v1/f", preImage, postImage, confirmed)
}

func (*singleWL) cleanup(*harness) {}

// ---------------------------------------------------------------------
// diff: commit of a page shared with a co-owner (Figure 4(b)).

const (
	coOff = 512 // co-owner's uncommitted range on the shared page
	coLen = 100
	txLen = 100 // transaction's range at offset 0 on the same page
)

type diffWL struct {
	coOwner *core.Process
	coFile  *core.File
}

func (*diffWL) name() string    { return "diff" }
func (*diffWL) sites() int      { return 1 }
func (*diffWL) paths() []string { return []string{"v1/f"} }

// diffPre is exactly one page of 'A': the shared page.
var diffPre = bytes.Repeat([]byte{'A'}, 1024)

func (w *diffWL) setup(h *harness) error {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return err
	}
	if err := commitFile(p, "v1/f", diffPre); err != nil {
		return err
	}
	// The co-owner holds uncommitted bytes on the same page and keeps
	// the file open, forcing the transaction's commit onto the page-
	// differencing path: its committed image must merge only the
	// transaction's ranges onto the stable previous version.
	co, err := h.sys.NewProcess(1)
	if err != nil {
		return err
	}
	cf, err := co.Open("v1/f")
	if err != nil {
		return err
	}
	if _, err := cf.WriteAt(bytes.Repeat([]byte{'C'}, coLen), coOff); err != nil {
		return err
	}
	w.coOwner, w.coFile = co, cf
	return nil
}

func (*diffWL) run(h *harness) bool {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return false
	}
	f, err := p.Open("v1/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{'B'}, txLen), 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	return p.EndTrans() == nil
}

func (w *diffWL) check(h *harness, confirmed bool) (string, []string) {
	got, err := readCommittedPath(h, "v1/f")
	if err != nil {
		return "unreadable", []string{fmt.Sprintf("v1/f: committed read failed after recovery: %v", err)}
	}
	var violations []string
	if len(got) != len(diffPre) {
		return fmt.Sprintf("torn(len=%d)", len(got)), []string{
			fmt.Sprintf("v1/f: committed size %d, want %d (neither image changes the size)", len(got), len(diffPre))}
	}
	head := got[:txLen]
	state := ""
	switch {
	case bytes.Equal(head, diffPre[:txLen]):
		state = "pre"
	case bytes.Equal(head, bytes.Repeat([]byte{'B'}, txLen)):
		state = "post"
	default:
		state = "torn(head)"
		violations = append(violations,
			"v1/f: transaction's range [0,100) is neither all-old nor all-new")
	}
	if confirmed && state == "pre" {
		violations = append(violations,
			"v1/f: commit was confirmed to the client but recovery reverted it")
	}
	// Everything outside the transaction's range must be the stable
	// previous version - in particular the co-owner's uncommitted 'C'
	// bytes must never reach committed storage.
	if i := bytes.IndexByte(got[txLen:], 'C'); i >= 0 {
		violations = append(violations,
			fmt.Sprintf("v1/f: co-owner's uncommitted byte committed at offset %d", txLen+i))
	}
	if !bytes.Equal(got[txLen:], diffPre[txLen:]) && bytes.IndexByte(got[txLen:], 'C') < 0 {
		violations = append(violations,
			"v1/f: bytes outside the transaction's range changed across its commit")
	}
	return state, violations
}

func (w *diffWL) cleanup(*harness) {
	// Retire the co-owner so its locks and working pages do not read as
	// residue.  After a crash the site restart already reaped it; the
	// error is then expected.
	if w.coOwner != nil {
		w.coOwner.Kill() //nolint:errcheck
		w.coOwner, w.coFile = nil, nil
	}
}

// ---------------------------------------------------------------------
// tpc: two storage sites plus a third coordinator-only site.

type tpcWL struct{}

func (*tpcWL) name() string    { return "tpc" }
func (*tpcWL) sites() int      { return 3 }
func (*tpcWL) paths() []string { return []string{"v1/f", "v2/f"} }

func (*tpcWL) setup(h *harness) error {
	p, err := h.sys.NewProcess(3)
	if err != nil {
		return err
	}
	fa, err := p.Create("v1/f")
	if err != nil {
		return err
	}
	defer fa.Close() //nolint:errcheck
	fb, err := p.Create("v2/f")
	if err != nil {
		return err
	}
	defer fb.Close() //nolint:errcheck
	if _, err := p.BeginTrans(); err != nil {
		return err
	}
	if _, err := fa.WriteAt(preImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return err
	}
	if _, err := fb.WriteAt(preImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return err
	}
	return p.EndTrans()
}

func (*tpcWL) run(h *harness) bool {
	p, err := h.sys.NewProcess(3)
	if err != nil {
		return false
	}
	fa, err := p.Open("v1/f")
	if err != nil {
		return false
	}
	fb, err := p.Open("v2/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	if _, err := fa.WriteAt(postImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	if _, err := fb.WriteAt(postImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	// An EndTrans failure is NOT aborted here: once the commit record
	// may exist, only the protocol (recovery, presumed abort) decides
	// the outcome; the audit checks both files agree with it.
	return p.EndTrans() == nil
}

func (*tpcWL) check(h *harness, confirmed bool) (string, []string) {
	sa, va := checkAllOrNothing(h, "v1/f", preImage, postImage, confirmed)
	sb, vb := checkAllOrNothing(h, "v2/f", preImage, postImage, confirmed)
	violations := append(va, vb...)
	state := sa
	if sa != sb {
		state = fmt.Sprintf("split(%s/%s)", sa, sb)
		violations = append(violations, fmt.Sprintf(
			"cross-site atomicity torn: v1/f recovered %s but v2/f recovered %s", sa, sb))
	}
	return state, violations
}

func (*tpcWL) cleanup(*harness) {}

// ---------------------------------------------------------------------
// migrate: the transaction commits from a site it migrated to.

type migrateWL struct{}

func (*migrateWL) name() string    { return "migrate" }
func (*migrateWL) sites() int      { return 2 }
func (*migrateWL) paths() []string { return []string{"v1/f", "v2/f"} }

func (*migrateWL) setup(h *harness) error {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return err
	}
	if err := commitFile(p, "v1/f", preImage); err != nil {
		return err
	}
	return commitFile(p, "v2/f", preImage)
}

func (*migrateWL) run(h *harness) bool {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return false
	}
	f1, err := p.Open("v1/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	abort := func() bool {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	if _, err := f1.WriteAt(postImage, 0); err != nil {
		return abort()
	}
	// A member process forks to site 2, writes there, and exits (its
	// file list merges into the top-level process)...
	child, err := p.Fork(simnet.SiteID(2))
	if err != nil {
		return abort()
	}
	f2, err := child.Open("v2/f")
	if err != nil {
		return abort()
	}
	if _, err := f2.WriteAt(postImage, 0); err != nil {
		return abort()
	}
	if err := child.Exit(); err != nil {
		return abort()
	}
	// ...then the top-level process migrates to site 2 and commits from
	// there: the coordinator site is not the transaction's origin.
	if err := p.Migrate(simnet.SiteID(2)); err != nil {
		return abort()
	}
	return p.EndTrans() == nil
}

func (*migrateWL) check(h *harness, confirmed bool) (string, []string) {
	sa, va := checkAllOrNothing(h, "v1/f", preImage, postImage, confirmed)
	sb, vb := checkAllOrNothing(h, "v2/f", preImage, postImage, confirmed)
	violations := append(va, vb...)
	state := sa
	if sa != sb {
		state = fmt.Sprintf("split(%s/%s)", sa, sb)
		violations = append(violations, fmt.Sprintf(
			"cross-site atomicity torn: v1/f recovered %s but v2/f recovered %s", sa, sb))
	}
	return state, violations
}

func (*migrateWL) cleanup(*harness) {}

// ---------------------------------------------------------------------
// readonly: two-phase commit where the remote participant only read.

type readonlyWL struct{}

func (*readonlyWL) name() string    { return "readonly" }
func (*readonlyWL) sites() int      { return 2 }
func (*readonlyWL) paths() []string { return []string{"v1/f", "v2/f"} }
func (*readonlyWL) fastPaths() bool { return true }

func (*readonlyWL) setup(h *harness) error {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return err
	}
	if err := commitFile(p, "v1/f", preImage); err != nil {
		return err
	}
	return commitFile(p, "v2/f", preImage)
}

func (*readonlyWL) run(h *harness) bool {
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return false
	}
	f1, err := p.Open("v1/f")
	if err != nil {
		return false
	}
	f2, err := p.Open("v2/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	if _, err := f1.WriteAt(postImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	// The remote participant only takes a shared lock and reads: with
	// fast paths on it votes read-only at prepare time, forces no
	// prepare record, and receives no phase-two message.  Site 2's
	// sweep therefore learns zero crash points - the matrix itself is
	// the proof that the read-only voter performs no stable write.
	if err := f2.LockRange(0, 8, core.Shared); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	if _, err := f2.ReadAt(make([]byte, 8), 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	// As in tpc, an EndTrans failure is not aborted here: once the
	// commit record may exist only the protocol decides the outcome.
	return p.EndTrans() == nil
}

func (*readonlyWL) check(h *harness, confirmed bool) (string, []string) {
	state, violations := checkAllOrNothing(h, "v1/f", preImage, postImage, confirmed)
	// The read-only file must be byte-identical to its baseline at
	// every crash point: a shared read never changes committed state.
	got, err := readCommittedPath(h, "v2/f")
	if err != nil {
		violations = append(violations,
			fmt.Sprintf("v2/f: committed read failed after recovery: %v", err))
	} else if !bytes.Equal(got, preImage) {
		violations = append(violations,
			fmt.Sprintf("v2/f: read-only participant's file changed across commit (%s)",
				classify(got, preImage, postImage)))
	}
	return state, violations
}

func (*readonlyWL) cleanup(*harness) {}

// ---------------------------------------------------------------------
// onephase: single remote participant site, combined message.

type onephaseWL struct{}

func (*onephaseWL) name() string    { return "onephase" }
func (*onephaseWL) sites() int      { return 2 }
func (*onephaseWL) paths() []string { return []string{"v1/f"} }
func (*onephaseWL) fastPaths() bool { return true }

func (*onephaseWL) setup(h *harness) error {
	p, err := h.sys.NewProcess(2)
	if err != nil {
		return err
	}
	return commitFile(p, "v1/f", preImage)
}

func (*onephaseWL) run(h *harness) bool {
	// The coordinator runs at site 2 but every touched file lives at
	// site 1: the combined prepare-and-commit message delegates the
	// commit point to site 1's prepare-record force, and the
	// coordinator log is never written.  A crash on either side of
	// that force must resolve from the record count alone (the
	// coordinator has nothing to answer a status query from).
	p, err := h.sys.NewProcess(2)
	if err != nil {
		return false
	}
	f, err := p.Open("v1/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	if _, err := f.WriteAt(postImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	return p.EndTrans() == nil
}

func (*onephaseWL) check(h *harness, confirmed bool) (string, []string) {
	return checkAllOrNothing(h, "v1/f", preImage, postImage, confirmed)
}

func (*onephaseWL) cleanup(*harness) {}

// ---------------------------------------------------------------------
// lease: sticky lock leases across the crash surface.

// lease2Image is the conflicting transaction's target state; it follows
// postImage, so the committed file must march pre -> post -> post2 and
// recovery may stop at any completed step but never between them.
var lease2Image = bytes.Repeat([]byte{'D'}, 2600)

type leaseWL struct {
	// confirmed2 records whether the conflicting (revoking) commit was
	// confirmed to its client on this replay.
	confirmed2 bool
}

func (*leaseWL) name() string     { return "lease" }
func (*leaseWL) sites() int       { return 2 }
func (*leaseWL) paths() []string  { return []string{"v2/f"} }
func (*leaseWL) lockLeases() bool { return true }

func (*leaseWL) setup(h *harness) error {
	// The setup commit runs from site 1 against site 2's file, so it
	// leaves site 2 holding a lease for site 1 before any fault is armed.
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return err
	}
	return commitFile(p, "v2/f", preImage)
}

func (w *leaseWL) run(h *harness) bool {
	w.confirmed2 = false
	// Probed transaction: the implicit write hits site 1's cached lease,
	// skips the lock message, and site 2 materializes the descriptor.
	p, err := h.sys.NewProcess(1)
	if err != nil {
		return false
	}
	f, err := p.Open("v2/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	if _, err := f.WriteAt(postImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	// As in tpc, an EndTrans failure is not aborted: once the commit
	// record may exist only the protocol decides the outcome.
	confirmed := p.EndTrans() == nil

	// Conflicting transaction at the storage site: its lock acquisition
	// must revoke site 1's lease before the grant.  Its own crash points
	// are part of the sweep; its outcome is audited separately.
	q, err := h.sys.NewProcess(2)
	if err != nil {
		return confirmed
	}
	g, err := q.Open("v2/f")
	if err != nil {
		return confirmed
	}
	if _, err := q.BeginTrans(); err != nil {
		return confirmed
	}
	if _, err := g.WriteAt(lease2Image, 0); err != nil {
		q.AbortTrans() //nolint:errcheck
		return confirmed
	}
	w.confirmed2 = q.EndTrans() == nil
	return confirmed
}

func (w *leaseWL) check(h *harness, confirmed bool) (string, []string) {
	got, err := readCommittedPath(h, "v2/f")
	if err != nil {
		return "unreadable", []string{fmt.Sprintf("v2/f: committed read failed after recovery: %v", err)}
	}
	var state string
	switch {
	case bytes.Equal(got, preImage):
		state = "pre"
	case bytes.Equal(got, postImage):
		state = "post"
	case bytes.Equal(got, lease2Image):
		state = "post2"
	default:
		state = fmt.Sprintf("torn(len=%d)", len(got))
	}
	var violations []string
	if state != "pre" && state != "post" && state != "post2" {
		violations = append(violations,
			fmt.Sprintf("v2/f: committed content matches none of the three images (%s)", state))
	}
	// The commits are serial, so confirmation is monotonic: the revoking
	// commit implies its state, the lease-hit commit implies at least its
	// own.
	if w.confirmed2 && state != "post2" {
		violations = append(violations,
			fmt.Sprintf("v2/f: revoking commit was confirmed but recovery kept %q", state))
	}
	if confirmed && state == "pre" {
		violations = append(violations,
			"v2/f: lease-hit commit was confirmed to the client but recovery reverted it")
	}
	return state, violations
}

func (*leaseWL) cleanup(*harness) {}

// ---------------------------------------------------------------------
// ownermove: an ownership move fires inside the probed commit, racing a
// follow-up commit from the file's old home site.

// move2Image is the racing transaction's target state; it follows
// postImage, so v1/f must march pre -> post -> post2.
var move2Image = bytes.Repeat([]byte{'E'}, 2600)

type ownermoveWL struct {
	// confirmed2 records whether the racing commit (from the old home)
	// was confirmed to its client on this replay.
	confirmed2 bool
}

func (*ownermoveWL) name() string            { return "ownermove" }
func (*ownermoveWL) sites() int              { return 2 }
func (*ownermoveWL) paths() []string         { return []string{"v1/f", "v1/warm"} }
func (*ownermoveWL) adaptivePlacement() bool { return true }

// sweepDisks adds the hosted v1 volume at site 2 - the disk the
// adoption writes land on.  setup's warm move creates it before any
// fault is armed.
func (*ownermoveWL) sweepDisks() []diskRef {
	return []diskRef{{Site: 1, Volume: "v1"}, {Site: 2, Volume: "v2"}, {Site: 2, Volume: "v1"}}
}

func (*ownermoveWL) setup(h *harness) error {
	p, err := h.sys.NewProcess(2)
	if err != nil {
		return err
	}
	// Warm move: three remote commits on v1/warm migrate it to site 2
	// (the decayed access mass crosses MinAccesses=2 on the third),
	// creating the hosted v1 volume there so its disk is part of the
	// sweep from the first armed write.
	if err := commitFile(p, "v1/warm", preImage); err != nil {
		return err
	}
	f, err := p.Open("v1/warm")
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := p.BeginTrans(); err != nil {
			return err
		}
		if _, err := f.WriteAt(preImage, 0); err != nil {
			return err
		}
		if err := p.EndTrans(); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if h.site(2).Volume("v1") == nil {
		return fmt.Errorf("ownermove setup: warm move did not create hosted v1 at site 2")
	}
	// The probed file: two committed remote accesses, one short of the
	// move threshold - the probed commit supplies the third.
	if err := commitFile(p, "v1/f", preImage); err != nil {
		return err
	}
	g, err := p.Open("v1/f")
	if err != nil {
		return err
	}
	if _, err := p.BeginTrans(); err != nil {
		return err
	}
	if _, err := g.WriteAt(preImage, 0); err != nil {
		return err
	}
	if err := p.EndTrans(); err != nil {
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	if home, err := h.sys.Cluster().StorageSite("v1/f"); err != nil || home != 1 {
		return fmt.Errorf("ownermove setup: v1/f moved early (home %v, err %v)", home, err)
	}
	return nil
}

func (w *ownermoveWL) run(h *harness) bool {
	w.confirmed2 = false
	// Probed transaction from site 2: its commit is the second remote
	// access, so the post-commit sweep moves v1/f to site 2 inline -
	// the armed crash point can land anywhere inside commit or move.
	p, err := h.sys.NewProcess(2)
	if err != nil {
		return false
	}
	f, err := p.Open("v1/f")
	if err != nil {
		return false
	}
	if _, err := p.BeginTrans(); err != nil {
		return false
	}
	if _, err := f.WriteAt(postImage, 0); err != nil {
		p.AbortTrans() //nolint:errcheck
		return false
	}
	confirmed := p.EndTrans() == nil

	// Racing commit from the old home site: it resolves the file's
	// current home (waiting out the fence if the move is mid-flight)
	// and must land exactly once, wherever the bytes now live.
	q, err := h.sys.NewProcess(1)
	if err != nil {
		return confirmed
	}
	g, err := q.Open("v1/f")
	if err != nil {
		return confirmed
	}
	if _, err := q.BeginTrans(); err != nil {
		return confirmed
	}
	if _, err := g.WriteAt(move2Image, 0); err != nil {
		q.AbortTrans() //nolint:errcheck
		return confirmed
	}
	w.confirmed2 = q.EndTrans() == nil
	return confirmed
}

func (w *ownermoveWL) check(h *harness, confirmed bool) (string, []string) {
	// Heal pass: restart every site so each runs its foreign-file purge,
	// then assert single-primary convergence.  (Recovery already
	// restarted the crashed sites; this makes the garbage-collection
	// half of the invariant observable at every crash point.)
	for i := 1; i <= h.n; i++ {
		s := h.site(i)
		if s.Up() {
			s.Crash()
		}
		if err := s.Restart(); err != nil {
			return "unrecoverable", []string{fmt.Sprintf("heal restart site %d: %v", i, err)}
		}
	}
	h.drain()

	var violations []string
	// Exactly one primary: the namespace resolves each file to one
	// site, and after the heal pass only that site's v1 volume holds a
	// local copy.
	for _, path := range []string{"v1/f", "v1/warm"} {
		home, err := h.sys.Cluster().StorageSite(path)
		if err != nil {
			violations = append(violations, fmt.Sprintf("%s: no resolvable home after heal: %v", path, err))
			continue
		}
		name := path[len("v1/"):]
		copies := 0
		for i := 1; i <= h.n; i++ {
			vol := h.site(i).Volume("v1")
			if vol == nil {
				continue
			}
			has, err := h.site(i).HasLocalFile("v1", name)
			if err != nil {
				violations = append(violations, fmt.Sprintf("%s: local-copy scan at site %d: %v", path, i, err))
				continue
			}
			if has {
				copies++
				if simnet.SiteID(i) != home {
					violations = append(violations,
						fmt.Sprintf("%s: site %d holds a local copy but the namespace homes it at %v", path, i, home))
				}
			}
		}
		if copies != 1 {
			violations = append(violations, fmt.Sprintf("%s: %d local copies after heal, want exactly 1", path, copies))
		}
	}

	// Content: pre -> post -> post2, no torn states, confirmations
	// monotone.
	got, err := readCommittedPath(h, "v1/f")
	if err != nil {
		return "unreadable", append(violations, fmt.Sprintf("v1/f: committed read failed after recovery: %v", err))
	}
	var state string
	switch {
	case bytes.Equal(got, preImage):
		state = "pre"
	case bytes.Equal(got, postImage):
		state = "post"
	case bytes.Equal(got, move2Image):
		state = "post2"
	default:
		state = fmt.Sprintf("torn(len=%d)", len(got))
	}
	if state != "pre" && state != "post" && state != "post2" {
		violations = append(violations,
			fmt.Sprintf("v1/f: committed content matches none of the three images (%s)", state))
	}
	if w.confirmed2 && state != "post2" {
		violations = append(violations,
			fmt.Sprintf("v1/f: racing commit was confirmed but recovery kept %q", state))
	}
	if confirmed && state == "pre" {
		violations = append(violations,
			"v1/f: moving commit was confirmed to the client but recovery reverted it")
	}
	if warm, err := readCommittedPath(h, "v1/warm"); err != nil || !bytes.Equal(warm, preImage) {
		violations = append(violations,
			fmt.Sprintf("v1/warm: committed bytes damaged by the sweep (err=%v len=%d)", err, len(warm)))
	}
	return state, violations
}

func (*ownermoveWL) cleanup(*harness) {}
