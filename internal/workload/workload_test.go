package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateSequential(t *testing.T) {
	accs := Generate(Spec{Pattern: Sequential, FileSize: 1024, RecordSize: 64, Count: 20, Seed: 1})
	if len(accs) != 20 {
		t.Fatalf("count = %d", len(accs))
	}
	// Ascending slots, wrapping at file size.
	nSlots := int64(1024 / 64)
	for i, a := range accs {
		want := (int64(i) % nSlots) * 64
		if a.Off != want || a.Len != 64 {
			t.Fatalf("access %d = %+v, want off %d", i, a, want)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	for _, pat := range []Pattern{Sequential, Random, HotCold} {
		accs := Generate(Spec{Pattern: pat, FileSize: 4096, RecordSize: 100, Count: 200, Seed: 7})
		for _, a := range accs {
			if a.Off < 0 || a.Off+int64(a.Len) > 4096 {
				t.Fatalf("%v access out of bounds: %+v", pat, a)
			}
			if a.Off%100 != 0 {
				t.Fatalf("%v access not slot-aligned: %+v", pat, a)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Pattern: Random, FileSize: 8192, RecordSize: 32, Count: 50, Seed: 99}
	a := Generate(spec)
	b := Generate(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different strings")
		}
	}
	spec.Seed = 100
	c := Generate(spec)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical strings")
	}
}

func TestGenerateDegenerate(t *testing.T) {
	if got := Generate(Spec{Pattern: Random, FileSize: 10, RecordSize: 0, Count: 5}); got != nil {
		t.Fatal("zero record size")
	}
	if got := Generate(Spec{Pattern: Random, FileSize: 10, RecordSize: 20, Count: 5}); got != nil {
		t.Fatal("record bigger than file")
	}
	if got := Generate(Spec{Pattern: Random, FileSize: 100, RecordSize: 10, Count: 0}); got != nil {
		t.Fatal("zero count")
	}
}

func TestHotColdSkew(t *testing.T) {
	accs := Generate(Spec{Pattern: HotCold, FileSize: 64 * 1024, RecordSize: 64, Count: 5000, Seed: 3})
	nSlots := int64(64 * 1024 / 64)
	hotLimit := (nSlots / 10) * 64
	hot := 0
	for _, a := range accs {
		if a.Off < hotLimit {
			hot++
		}
	}
	frac := float64(hot) / float64(len(accs))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.2f, want ~0.9", frac)
	}
}

func TestPayloadDeterministic(t *testing.T) {
	a := Payload(3, 16)
	b := Payload(3, 16)
	if string(a) != string(b) {
		t.Fatal("payload not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("len = %d", len(a))
	}
	for _, c := range a {
		if c < 'A' || c > 'Z' {
			t.Fatalf("payload byte %q", c)
		}
	}
}

func TestDebitCredit(t *testing.T) {
	trs := DebitCredit(10, 100, 5)
	if len(trs) != 100 {
		t.Fatalf("count = %d", len(trs))
	}
	for _, tr := range trs {
		if tr.From == tr.To {
			t.Fatalf("self transfer: %+v", tr)
		}
		if tr.From < 0 || tr.From >= 10 || tr.To < 0 || tr.To >= 10 {
			t.Fatalf("account out of range: %+v", tr)
		}
		if tr.Amount < 1 || tr.Amount > 10 {
			t.Fatalf("amount out of range: %+v", tr)
		}
	}
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || Random.String() != "random" || HotCold.String() != "hotcold" {
		t.Fatal("pattern names")
	}
	if Pattern(9).String() != "pattern(9)" {
		t.Fatal("unknown pattern")
	}
}

// Property: every generated access is in bounds and slot-aligned for
// arbitrary specs.
func TestGenerateInvariantProperty(t *testing.T) {
	f := func(pat uint8, recSizeRaw uint8, countRaw uint8, seed int64) bool {
		recSize := int(recSizeRaw)%256 + 1
		count := int(countRaw) % 64
		spec := Spec{
			Pattern:    Pattern(int(pat) % 3),
			FileSize:   int64(recSize) * 50,
			RecordSize: recSize,
			Count:      count,
			Seed:       seed,
		}
		accs := Generate(spec)
		if count == 0 {
			return accs == nil
		}
		if len(accs) != count {
			return false
		}
		for _, a := range accs {
			if a.Off < 0 || a.Off+int64(a.Len) > spec.FileSize || a.Off%int64(recSize) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkewAndDeterminism(t *testing.T) {
	spec := Spec{Pattern: Zipfian, FileSize: 64 * 1024, RecordSize: 64, Count: 5000, Seed: 11, ZipfS: 1.2}
	a := Generate(spec)
	b := Generate(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different zipfian strings")
		}
	}
	// Rank 0 (slot 0) must dominate: with s=1.2 over 1024 slots its
	// share is >20%, and the top decile carries the bulk of the mass.
	nSlots := int64(64 * 1024 / 64)
	counts := make(map[int64]int)
	for _, acc := range a {
		counts[acc.Off/64]++
	}
	if frac := float64(counts[0]) / float64(len(a)); frac < 0.15 {
		t.Fatalf("hottest slot fraction = %.3f, want > 0.15", frac)
	}
	topDecile := 0
	for slot, n := range counts {
		if slot < nSlots/10 {
			topDecile += n
		}
	}
	if frac := float64(topDecile) / float64(len(a)); frac < 0.6 {
		t.Fatalf("top-decile fraction = %.3f, want > 0.6", frac)
	}
}

func TestShiftingHotspotMoves(t *testing.T) {
	// With a shift period of half the count, the hottest slot of the
	// first half must differ from the hottest slot of the second half.
	spec := Spec{Pattern: ShiftingHotspot, FileSize: 64 * 1024, RecordSize: 64,
		Count: 4000, Seed: 5, ZipfS: 1.2, ShiftPeriod: 2000}
	accs := Generate(spec)
	if len(accs) != 4000 {
		t.Fatalf("count = %d", len(accs))
	}
	hottest := func(part []Access) int64 {
		counts := make(map[int64]int)
		for _, a := range part {
			counts[a.Off]++
		}
		var best int64
		bestN := -1
		for off, n := range counts {
			if n > bestN || (n == bestN && off < best) {
				best, bestN = off, n
			}
		}
		return best
	}
	h1 := hottest(accs[:2000])
	h2 := hottest(accs[2000:])
	if h1 == h2 {
		t.Fatalf("hotspot did not shift: both halves hottest at %d", h1)
	}
	// Determinism across runs.
	again := Generate(spec)
	for i := range accs {
		if accs[i] != again[i] {
			t.Fatal("same seed produced different shifting-hotspot strings")
		}
	}
}

func TestChooserBounds(t *testing.T) {
	for _, pat := range []Pattern{Zipfian, ShiftingHotspot} {
		ch := NewChooser(pat, 48, 3, 0, 0, 1000)
		for i := 0; i < 1000; i++ {
			if s := ch.Next(i); s < 0 || s >= 48 {
				t.Fatalf("%v slot %d out of [0,48)", pat, s)
			}
		}
	}
}

func TestNewPatternStrings(t *testing.T) {
	if Zipfian.String() != "zipfian" || ShiftingHotspot.String() != "shifting-hotspot" {
		t.Fatal("new pattern names")
	}
}
