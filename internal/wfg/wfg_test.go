package wfg

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/stats"
	"repro/internal/trace"
)

func edge(w, h, f string) lockmgr.WaitEdge {
	return lockmgr.WaitEdge{Waiter: w, Holder: h, FileID: f}
}

func TestNoCycleInChain(t *testing.T) {
	g := Build([]lockmgr.WaitEdge{
		edge("txn:1", "txn:2", "f1"),
		edge("txn:2", "txn:3", "f2"),
	})
	if g.Deadlocked() {
		t.Fatal("chain reported as deadlock")
	}
	if len(g.Cycles()) != 0 {
		t.Fatal("cycles in a DAG")
	}
}

func TestTwoCycle(t *testing.T) {
	g := Build([]lockmgr.WaitEdge{
		edge("txn:1", "txn:2", "f1"),
		edge("txn:2", "txn:1", "f2"),
	})
	cycles := g.Cycles()
	if len(cycles) != 1 || !reflect.DeepEqual(cycles[0], []string{"txn:1", "txn:2"}) {
		t.Fatalf("cycles = %v", cycles)
	}
	if got := g.Victims(VictimYoungest); !reflect.DeepEqual(got, []string{"txn:2"}) {
		t.Fatalf("youngest victim = %v", got)
	}
	if got := g.Victims(VictimOldest); !reflect.DeepEqual(got, []string{"txn:1"}) {
		t.Fatalf("oldest victim = %v", got)
	}
}

func TestSelfLoop(t *testing.T) {
	// A group waiting on itself (possible with distinct processes of one
	// transaction in a pathological composition) is a deadlock.
	g := Build([]lockmgr.WaitEdge{edge("txn:1", "txn:1", "f1")})
	if !g.Deadlocked() {
		t.Fatal("self-loop not detected")
	}
}

func TestMultipleIndependentCycles(t *testing.T) {
	g := Build([]lockmgr.WaitEdge{
		edge("txn:1", "txn:2", "f1"),
		edge("txn:2", "txn:1", "f1"),
		edge("txn:8", "txn:9", "f2"),
		edge("txn:9", "txn:8", "f2"),
		edge("txn:5", "txn:1", "f3"), // waits into cycle but not part of it
	})
	cycles := g.Cycles()
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v", cycles)
	}
	victims := g.Victims(nil)
	if !reflect.DeepEqual(victims, []string{"txn:2", "txn:9"}) {
		t.Fatalf("victims = %v", victims)
	}
}

func TestThreeCycleSCC(t *testing.T) {
	g := Build([]lockmgr.WaitEdge{
		edge("txn:a", "txn:b", "f1"),
		edge("txn:b", "txn:c", "f2"),
		edge("txn:c", "txn:a", "f3"),
	})
	cycles := g.Cycles()
	if len(cycles) != 1 || len(cycles[0]) != 3 {
		t.Fatalf("cycles = %v", cycles)
	}
}

func TestVictimPrefersTransactions(t *testing.T) {
	// A cycle mixing transactions and a non-transaction process: the
	// victim must be a transaction (processes cannot be rolled back).
	cycle := []string{"pid:99", "txn:3", "txn:7"}
	if v := VictimYoungest(cycle); v != "txn:7" {
		t.Fatalf("youngest = %q", v)
	}
	if v := VictimOldest(cycle); v != "txn:3" {
		t.Fatalf("oldest = %q", v)
	}
	// All-process cycle still yields a deterministic victim.
	if v := VictimYoungest([]string{"pid:2", "pid:1"}); v != "pid:2" {
		t.Fatalf("process victim = %q", v)
	}
	if v := VictimOldest([]string{"pid:2", "pid:1"}); v != "pid:1" {
		t.Fatalf("process victim = %q", v)
	}
}

func TestNodesAndWaitsFor(t *testing.T) {
	g := Build([]lockmgr.WaitEdge{edge("a", "b", "f")})
	if !reflect.DeepEqual(g.Nodes(), []string{"a", "b"}) {
		t.Fatalf("nodes = %v", g.Nodes())
	}
	if !g.WaitsFor("a", "b") || g.WaitsFor("b", "a") {
		t.Fatal("WaitsFor")
	}
}

func TestDetectorStepInvokesCallback(t *testing.T) {
	var calls []string
	d := &Detector{
		Collect: func() []lockmgr.WaitEdge {
			return []lockmgr.WaitEdge{
				edge("txn:1", "txn:2", "f1"),
				edge("txn:2", "txn:1", "f1"),
			}
		},
		OnVictim: func(group string, cycle []string) {
			calls = append(calls, group)
			if len(cycle) != 2 {
				t.Errorf("cycle = %v", cycle)
			}
		},
	}
	victims := d.Step()
	if !reflect.DeepEqual(victims, []string{"txn:2"}) || !reflect.DeepEqual(calls, []string{"txn:2"}) {
		t.Fatalf("victims = %v, calls = %v", victims, calls)
	}
}

func TestDetectorStartStop(t *testing.T) {
	var scans atomic.Int64
	d := &Detector{
		Collect: func() []lockmgr.WaitEdge {
			scans.Add(1)
			return nil
		},
	}
	d.Start(2 * time.Millisecond)
	d.Start(2 * time.Millisecond) // second start is a no-op
	time.Sleep(20 * time.Millisecond)
	d.Stop()
	d.Stop() // double stop is safe
	n := scans.Load()
	if n == 0 {
		t.Fatal("detector never scanned")
	}
	time.Sleep(10 * time.Millisecond)
	if scans.Load() != n {
		t.Fatal("detector kept scanning after Stop")
	}
}

// TestEndToEndWithLockManager wires a real lock table into the detector:
// two transactions deadlock across two files; the victim's cancellation
// releases the other.
func TestEndToEndWithLockManager(t *testing.T) {
	st := stats.NewSet()
	m := lockmgr.NewManager(st)
	fa := m.File("f/a", nil)
	fb := m.File("f/b", nil)
	h1 := lockmgr.Holder{PID: 1, Txn: "T1"}
	h2 := lockmgr.Holder{PID: 2, Txn: "T2"}

	if _, err := fa.Lock(lockmgr.Request{Holder: h1, Mode: lockmgr.ModeExclusive, Off: 0, Len: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.Lock(lockmgr.Request{Holder: h2, Mode: lockmgr.ModeExclusive, Off: 0, Len: 1}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := fb.Lock(lockmgr.Request{Holder: h1, Mode: lockmgr.ModeExclusive, Off: 0, Len: 1, Wait: true, Timeout: 2 * time.Second})
		errs <- err
	}()
	go func() {
		defer wg.Done()
		_, err := fa.Lock(lockmgr.Request{Holder: h2, Mode: lockmgr.ModeExclusive, Off: 0, Len: 1, Wait: true, Timeout: 2 * time.Second})
		errs <- err
	}()
	for fa.QueueLength() == 0 || fb.QueueLength() == 0 {
		time.Sleep(time.Millisecond)
	}

	d := &Detector{
		Collect: m.WaitEdges,
		OnVictim: func(group string, cycle []string) {
			m.ReleaseGroup(group) // abort: cancel waits + drop locks
		},
	}
	victims := d.Step()
	if !reflect.DeepEqual(victims, []string{"txn:T2"}) {
		t.Fatalf("victims = %v", victims)
	}
	wg.Wait()
	close(errs)
	var okCount, cancelCount int
	for err := range errs {
		if err == nil {
			okCount++
		} else {
			cancelCount++
		}
	}
	if okCount != 1 || cancelCount != 1 {
		t.Fatalf("ok=%d cancelled=%d, want 1/1", okCount, cancelCount)
	}
	// After resolution no deadlock remains.
	if Build(m.WaitEdges()).Deadlocked() {
		t.Fatal("deadlock persists after victim abort")
	}
}

// Property: Cycles() finds a deadlock exactly when the edge set contains
// a directed cycle (checked against an independent DFS).
func TestCycleDetectionMatchesReferenceProperty(t *testing.T) {
	names := []string{"txn:1", "txn:2", "txn:3", "txn:4", "txn:5"}
	f := func(pairs []struct{ A, B uint8 }) bool {
		var edges []lockmgr.WaitEdge
		adj := map[string][]string{}
		for _, p := range pairs {
			a := names[int(p.A)%len(names)]
			b := names[int(p.B)%len(names)]
			edges = append(edges, edge(a, b, "f"))
			adj[a] = append(adj[a], b)
		}
		// Reference: DFS cycle detection.
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := map[string]int{}
		var hasCycle bool
		var dfs func(n string)
		dfs = func(n string) {
			color[n] = gray
			for _, m := range adj[n] {
				if color[m] == gray {
					hasCycle = true
				} else if color[m] == white {
					dfs(m)
				}
			}
			color[n] = black
		}
		for n := range adj {
			if color[n] == white {
				dfs(n)
			}
		}
		return Build(edges).Deadlocked() == hasCycle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorEmitsVictimCycleTrace(t *testing.T) {
	col := trace.NewCollector(0)
	d := &Detector{
		Collect: func() []lockmgr.WaitEdge {
			return []lockmgr.WaitEdge{
				edge("txn:1", "txn:2", "f1"),
				edge("txn:2", "txn:1", "f2"),
			}
		},
		Tracer: col.Site(0),
	}
	victims := d.Step()
	if !reflect.DeepEqual(victims, []string{"txn:2"}) {
		t.Fatalf("victims = %v, want [txn:2]", victims)
	}
	var evs []trace.Event
	for _, ev := range col.Events() {
		if ev.Type == trace.DeadlockVictim {
			evs = append(evs, ev)
		}
	}
	if len(evs) != 2 {
		t.Fatalf("DeadlockVictim events = %d, want 2 (one per cycle member)", len(evs))
	}
	// Victim leads, then the other cycle members; every event names the
	// victim in Txn and the cycle length in Arg.
	if evs[0].Object != "txn:2" || evs[1].Object != "txn:1" {
		t.Fatalf("cycle objects = %q, %q; want victim txn:2 first then txn:1", evs[0].Object, evs[1].Object)
	}
	for _, ev := range evs {
		if ev.Txn != "txn:2" {
			t.Fatalf("event Txn = %q, want victim txn:2", ev.Txn)
		}
		if ev.Arg != 2 {
			t.Fatalf("event Arg = %d, want cycle length 2", ev.Arg)
		}
	}
}

func TestDetectorNilTracer(t *testing.T) {
	d := &Detector{
		Collect: func() []lockmgr.WaitEdge {
			return []lockmgr.WaitEdge{edge("txn:9", "txn:9", "f")}
		},
	}
	if got := d.Step(); !reflect.DeepEqual(got, []string{"txn:9"}) {
		t.Fatalf("victims = %v, want [txn:9]", got)
	}
}

func TestLeaseEntriesProduceNoPhantomVictim(t *testing.T) {
	// A released-but-cached lease blocks a waiter only until its revoke
	// callback lands; no transaction holds it, so no abort can clear it.
	// Before lockmgr excluded leases from edge construction, the waiter's
	// edge pointed at the "lease:site2" pseudo-group and the detector saw
	// a node it could neither progress nor victimize.  Build the graph
	// from a live lock table and check the lease never reaches it.
	m := lockmgr.NewManager(stats.NewSet())
	fl := m.File("v/leased", nil)
	if !fl.GrantLease(2, lockmgr.ModeExclusive, 0, 100) {
		t.Fatal("lease grant refused")
	}
	w := lockmgr.Holder{PID: 9, Txn: "TW"}
	go fl.Lock(lockmgr.Request{Holder: w, Mode: lockmgr.ModeShared, Off: 0, Len: 10, Wait: true}) //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for fl.QueueLength() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	g := Build(m.WaitEdges())
	for _, n := range g.Nodes() {
		if len(n) >= 6 && n[:6] == "lease:" {
			t.Fatalf("lease group %q leaked into the wait-for graph", n)
		}
	}
	if g.Deadlocked() || len(g.Victims(nil)) != 0 {
		t.Fatalf("phantom deadlock over a lease: cycles=%v", g.Cycles())
	}

	// A genuine cycle on other files is still found with the lease present.
	f1, f2 := m.File("v/c1", nil), m.File("v/c2", nil)
	h1 := lockmgr.Holder{PID: 11, Txn: "TC1"}
	h2 := lockmgr.Holder{PID: 12, Txn: "TC2"}
	if _, err := f1.Lock(lockmgr.Request{Holder: h1, Mode: lockmgr.ModeExclusive, Off: 0, Len: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Lock(lockmgr.Request{Holder: h2, Mode: lockmgr.ModeExclusive, Off: 0, Len: 10}); err != nil {
		t.Fatal(err)
	}
	go f1.Lock(lockmgr.Request{Holder: h2, Mode: lockmgr.ModeExclusive, Off: 0, Len: 10, Wait: true}) //nolint:errcheck
	go f2.Lock(lockmgr.Request{Holder: h1, Mode: lockmgr.ModeExclusive, Off: 0, Len: 10, Wait: true}) //nolint:errcheck
	for f1.QueueLength() < 1 || f2.QueueLength() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("cycle waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	g = Build(m.WaitEdges())
	if got := g.Victims(VictimYoungest); !reflect.DeepEqual(got, []string{"txn:TC2"}) {
		t.Fatalf("victims = %v, want [txn:TC2]", got)
	}
	m.ReleaseGroup("txn:TC2")
	m.ReleaseGroup("txn:TC1")
	fl.RevokeLease(2)
	m.ReleaseGroup("txn:TW")
}
