// Package wfg implements deadlock detection over the lock manager's
// wait-for edges.
//
// Section 3.1: "The Locus kernel does not detect deadlock.  Instead, an
// interface to operating system data is provided, permitting a system
// process to detect deadlock by constructing a wait-for graph, using
// conventional techniques."  This package is that system process: it
// gathers the per-site edges exported by lockmgr, builds the global
// graph, finds cycles (as strongly connected components), and picks
// victims under a pluggable policy.  Acting on a victim - aborting the
// transaction - is the caller's job, keeping resolution strategies open,
// exactly as the paper intends.
package wfg

import (
	"sort"
	"sync"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Graph is a wait-for graph over lock groups.
type Graph struct {
	// adj[waiter][holder] = files on which waiter waits for holder.
	adj map[string]map[string][]string
}

// Build constructs a graph from wait-for edges (typically the
// concatenation of every site's lockmgr.WaitEdges).
func Build(edges []lockmgr.WaitEdge) *Graph {
	g := &Graph{adj: make(map[string]map[string][]string)}
	for _, e := range edges {
		m := g.adj[e.Waiter]
		if m == nil {
			m = make(map[string][]string)
			g.adj[e.Waiter] = m
		}
		m[e.Holder] = append(m[e.Holder], e.FileID)
	}
	return g
}

// Nodes returns every group appearing in the graph, sorted.
func (g *Graph) Nodes() []string {
	set := map[string]bool{}
	for w, hs := range g.adj {
		set[w] = true
		for h := range hs {
			set[h] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WaitsFor reports whether waiter has an edge to holder.
func (g *Graph) WaitsFor(waiter, holder string) bool {
	_, ok := g.adj[waiter][holder]
	return ok
}

// Cycles returns the deadlocked groups as strongly connected components
// with more than one member (or a self-loop), each sorted, the list
// sorted by first member.  Every such component contains at least one
// deadlock cycle; aborting one member per component breaks it.
func (g *Graph) Cycles() [][]string {
	// Tarjan's SCC algorithm, iterative over sorted nodes for
	// determinism.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		var succs []string
		for w := range g.adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 || g.WaitsFor(comp[0], comp[0]) {
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}

	for _, v := range g.Nodes() {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Deadlocked reports whether any cycle exists.
func (g *Graph) Deadlocked() bool { return len(g.Cycles()) > 0 }

// Policy selects the victim to abort from one deadlock cycle.
type Policy func(cycle []string) string

// VictimYoungest picks the lexicographically greatest transaction group.
// Locus transaction identifiers are temporally unique and monotonically
// ordered, so this aborts the youngest transaction, preserving the most
// completed work.  Non-transaction groups are preferred as victims last
// (they cannot be rolled back).
func VictimYoungest(cycle []string) string {
	best := ""
	for _, g := range cycle {
		if len(g) > 4 && g[:4] == "txn:" {
			if best == "" || g > best {
				best = g
			}
		}
	}
	if best == "" {
		// All non-transactions: pick the greatest deterministically.
		for _, g := range cycle {
			if g > best {
				best = g
			}
		}
	}
	return best
}

// VictimOldest picks the lexicographically least transaction group (most
// work lost, but starvation-free for young transactions) - kept as an
// alternative resolution strategy, as the paper leaves the policy open.
func VictimOldest(cycle []string) string {
	best := ""
	for _, g := range cycle {
		if len(g) > 4 && g[:4] == "txn:" {
			if best == "" || g < best {
				best = g
			}
		}
	}
	if best == "" {
		for i, g := range cycle {
			if i == 0 || g < best {
				best = g
			}
		}
	}
	return best
}

// Victims applies the policy to every cycle, returning one victim per
// cycle, deduplicated and sorted.
func (g *Graph) Victims(policy Policy) []string {
	if policy == nil {
		policy = VictimYoungest
	}
	seen := map[string]bool{}
	var out []string
	for _, c := range g.Cycles() {
		v := policy(c)
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Detector periodically collects edges, finds deadlocks, and reports
// victims to a callback that is expected to abort them.
type Detector struct {
	// Collect gathers the current global wait-for edges (usually by
	// querying every site's lock manager).
	Collect func() []lockmgr.WaitEdge
	// Policy selects victims; nil means VictimYoungest.
	Policy Policy
	// OnVictim is invoked once per victim found in a scan.
	OnVictim func(group string, cycle []string)
	// Tracer, when set, records the victim's full cycle as
	// DeadlockVictim events (one per cycle member, the victim first),
	// closing the loop between detection and trace forensics.
	Tracer *trace.Tracer
	// Clock paces the scan interval.  Nil means the real-time clock.
	// Set before Start.
	Clock vtime.Clock
	// Stats, when set, counts scans ("deadlock_scans") and victims
	// ("deadlock_victims") into the registry behind the set.
	Stats *stats.Set

	// Stop wakes the scan goroutine with a credited send only while it
	// is parked on stop (waiting); when the goroutine is busy inside
	// Step the stopping flag alone is set and the loop notices it after
	// the scan.  A credited token aimed at a busy loop would strand in
	// the channel and, under a virtual clock, freeze simulated time.
	mu       sync.Mutex
	stopping bool
	waiting  bool
	stop     chan struct{} // cap 1; one token stops the scan goroutine
	exit     *vtime.Gate   // released by the scan goroutine on exit
}

// Step performs one detection scan and returns the victims (after
// invoking OnVictim for each).
func (d *Detector) Step() []string {
	reg := d.Stats.Registry()
	reg.Counter("deadlock_scans").Inc()
	g := Build(d.Collect())
	cycles := g.Cycles()
	policy := d.Policy
	if policy == nil {
		policy = VictimYoungest
	}
	seen := map[string]bool{}
	var victims []string
	for _, c := range cycles {
		v := policy(c)
		if v == "" || seen[v] {
			continue
		}
		seen[v] = true
		victims = append(victims, v)
		// One event per cycle member so the trace shows the whole loop;
		// the victim leads and Arg counts the cycle length.
		d.Tracer.Record(trace.DeadlockVictim, v, v, int64(len(c)))
		for _, member := range c {
			if member != v {
				d.Tracer.Record(trace.DeadlockVictim, v, member, int64(len(c)))
			}
		}
		if d.OnVictim != nil {
			d.OnVictim(v, c)
		}
	}
	reg.Counter("deadlock_victims").Add(int64(len(victims)))
	sort.Strings(victims)
	return victims
}

// Start runs Step every interval until Stop is called.
func (d *Detector) Start(interval time.Duration) {
	clk := d.Clock
	if clk == nil {
		clk = vtime.Real()
	}
	d.mu.Lock()
	if d.stop != nil {
		d.mu.Unlock()
		return
	}
	stop := make(chan struct{}, 1)
	exit := vtime.NewGate(clk)
	d.stop = stop
	d.exit = exit
	d.stopping = false
	d.mu.Unlock()
	clk.Go(func() {
		defer exit.Release()
		for {
			d.mu.Lock()
			if d.stopping {
				d.mu.Unlock()
				return
			}
			d.waiting = true
			d.mu.Unlock()
			_, woken := vtime.WaitRecv[struct{}](clk, stop, interval)
			d.mu.Lock()
			d.waiting = false
			stopping := d.stopping
			d.mu.Unlock()
			if !woken {
				// Stop may have raced the timeout; absorb its token.
				_, woken = vtime.TryRecv[struct{}](clk, stop)
			}
			if woken || stopping {
				return
			}
			d.Step()
		}
	})
}

// Stop halts a running detector and waits for its scan goroutine to
// exit, so no Step runs after Stop returns.  Safe to call when not
// started.
func (d *Detector) Stop() {
	clk := d.Clock
	if clk == nil {
		clk = vtime.Real()
	}
	d.mu.Lock()
	stop, exit := d.stop, d.exit
	d.stop, d.exit = nil, nil
	if stop != nil {
		d.stopping = true
		if d.waiting {
			d.waiting = false
			vtime.NotifySend(clk, stop, struct{}{})
		}
	}
	d.mu.Unlock()
	if exit != nil {
		exit.Wait()
	}
}
