// Package wfg implements deadlock detection over the lock manager's
// wait-for edges.
//
// Section 3.1: "The Locus kernel does not detect deadlock.  Instead, an
// interface to operating system data is provided, permitting a system
// process to detect deadlock by constructing a wait-for graph, using
// conventional techniques."  This package is that system process: it
// gathers the per-site edges exported by lockmgr, builds the global
// graph, finds cycles (as strongly connected components), and picks
// victims under a pluggable policy.  Acting on a victim - aborting the
// transaction - is the caller's job, keeping resolution strategies open,
// exactly as the paper intends.
package wfg

import (
	"sort"
	"sync"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/trace"
)

// Graph is a wait-for graph over lock groups.
type Graph struct {
	// adj[waiter][holder] = files on which waiter waits for holder.
	adj map[string]map[string][]string
}

// Build constructs a graph from wait-for edges (typically the
// concatenation of every site's lockmgr.WaitEdges).
func Build(edges []lockmgr.WaitEdge) *Graph {
	g := &Graph{adj: make(map[string]map[string][]string)}
	for _, e := range edges {
		m := g.adj[e.Waiter]
		if m == nil {
			m = make(map[string][]string)
			g.adj[e.Waiter] = m
		}
		m[e.Holder] = append(m[e.Holder], e.FileID)
	}
	return g
}

// Nodes returns every group appearing in the graph, sorted.
func (g *Graph) Nodes() []string {
	set := map[string]bool{}
	for w, hs := range g.adj {
		set[w] = true
		for h := range hs {
			set[h] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WaitsFor reports whether waiter has an edge to holder.
func (g *Graph) WaitsFor(waiter, holder string) bool {
	_, ok := g.adj[waiter][holder]
	return ok
}

// Cycles returns the deadlocked groups as strongly connected components
// with more than one member (or a self-loop), each sorted, the list
// sorted by first member.  Every such component contains at least one
// deadlock cycle; aborting one member per component breaks it.
func (g *Graph) Cycles() [][]string {
	// Tarjan's SCC algorithm, iterative over sorted nodes for
	// determinism.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		var succs []string
		for w := range g.adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 || g.WaitsFor(comp[0], comp[0]) {
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}

	for _, v := range g.Nodes() {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Deadlocked reports whether any cycle exists.
func (g *Graph) Deadlocked() bool { return len(g.Cycles()) > 0 }

// Policy selects the victim to abort from one deadlock cycle.
type Policy func(cycle []string) string

// VictimYoungest picks the lexicographically greatest transaction group.
// Locus transaction identifiers are temporally unique and monotonically
// ordered, so this aborts the youngest transaction, preserving the most
// completed work.  Non-transaction groups are preferred as victims last
// (they cannot be rolled back).
func VictimYoungest(cycle []string) string {
	best := ""
	for _, g := range cycle {
		if len(g) > 4 && g[:4] == "txn:" {
			if best == "" || g > best {
				best = g
			}
		}
	}
	if best == "" {
		// All non-transactions: pick the greatest deterministically.
		for _, g := range cycle {
			if g > best {
				best = g
			}
		}
	}
	return best
}

// VictimOldest picks the lexicographically least transaction group (most
// work lost, but starvation-free for young transactions) - kept as an
// alternative resolution strategy, as the paper leaves the policy open.
func VictimOldest(cycle []string) string {
	best := ""
	for _, g := range cycle {
		if len(g) > 4 && g[:4] == "txn:" {
			if best == "" || g < best {
				best = g
			}
		}
	}
	if best == "" {
		for i, g := range cycle {
			if i == 0 || g < best {
				best = g
			}
		}
	}
	return best
}

// Victims applies the policy to every cycle, returning one victim per
// cycle, deduplicated and sorted.
func (g *Graph) Victims(policy Policy) []string {
	if policy == nil {
		policy = VictimYoungest
	}
	seen := map[string]bool{}
	var out []string
	for _, c := range g.Cycles() {
		v := policy(c)
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Detector periodically collects edges, finds deadlocks, and reports
// victims to a callback that is expected to abort them.
type Detector struct {
	// Collect gathers the current global wait-for edges (usually by
	// querying every site's lock manager).
	Collect func() []lockmgr.WaitEdge
	// Policy selects victims; nil means VictimYoungest.
	Policy Policy
	// OnVictim is invoked once per victim found in a scan.
	OnVictim func(group string, cycle []string)
	// Tracer, when set, records the victim's full cycle as
	// DeadlockVictim events (one per cycle member, the victim first),
	// closing the loop between detection and trace forensics.
	Tracer *trace.Tracer

	mu      sync.Mutex
	stopped chan struct{}
	done    chan struct{} // closed by the scan goroutine on exit
}

// Step performs one detection scan and returns the victims (after
// invoking OnVictim for each).
func (d *Detector) Step() []string {
	g := Build(d.Collect())
	cycles := g.Cycles()
	policy := d.Policy
	if policy == nil {
		policy = VictimYoungest
	}
	seen := map[string]bool{}
	var victims []string
	for _, c := range cycles {
		v := policy(c)
		if v == "" || seen[v] {
			continue
		}
		seen[v] = true
		victims = append(victims, v)
		// One event per cycle member so the trace shows the whole loop;
		// the victim leads and Arg counts the cycle length.
		d.Tracer.Record(trace.DeadlockVictim, v, v, int64(len(c)))
		for _, member := range c {
			if member != v {
				d.Tracer.Record(trace.DeadlockVictim, v, member, int64(len(c)))
			}
		}
		if d.OnVictim != nil {
			d.OnVictim(v, c)
		}
	}
	sort.Strings(victims)
	return victims
}

// Start runs Step every interval until Stop is called.
func (d *Detector) Start(interval time.Duration) {
	d.mu.Lock()
	if d.stopped != nil {
		d.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	d.stopped = stop
	d.done = done
	d.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				select {
				case <-stop:
					return // stopped while the tick was pending
				default:
				}
				d.Step()
			}
		}
	}()
}

// Stop halts a running detector and waits for its scan goroutine to
// exit, so no Step runs after Stop returns.  Safe to call when not
// started.
func (d *Detector) Stop() {
	d.mu.Lock()
	stopped, done := d.stopped, d.done
	d.stopped, d.done = nil, nil
	d.mu.Unlock()
	if stopped != nil {
		close(stopped)
		<-done
	}
}
